//! The simulated world: peers, network, storage damage, metrics, adversary.
//!
//! All protocol behaviour is orchestrated here as discrete events. Peer
//! compute (effort proofs, hashing) occupies each peer's single-CPU
//! [`crate::schedule::TaskSchedule`]; message transfers go through the
//! flow-level network; every CPU-second is charged to an effort ledger so
//! the §6.1 metrics fall out directly.
//!
//! Peer state lives in the struct-of-arrays [`PeerTable`]
//! (see [`crate::peer`]), and world construction is O(population ×
//! reference-list size): initial reference lists are drawn through the
//! sparse index sampler and steady-state reputation is a lazy
//! founding-population rule, so a 10k–100k-peer world builds in
//! milliseconds and fits in a handful of flat allocations.

use lockss_effort::{CostModel, CostTable, Purpose};
use lockss_metrics::RunMetrics;
use lockss_net::{Network, NodeId};
use lockss_sim::{Duration, Engine, SimRng, SimTime};
use lockss_storage::{AuId, DamageProcess};

use lockss_obs::{SharedProfiler, Span};

use crate::admission::AdmissionOutcome;
use crate::adversary::Adversary;
use crate::config::WorldConfig;
use crate::msg::Message;
use crate::obs::CoreObs;
use crate::peer::{AuState, PeerTable};
use crate::poller::{InviteeStatus, PollPhase, PollState};
use crate::reflist::RefList;
use crate::reputation::Grade;
use crate::trace::{AdmissionVerdict, MsgKind, PollConclusion, TraceEvent, TraceSink};
use crate::types::{Identity, PollId};
use crate::voter::{VoterSession, VoterStage};

/// Engine alias: all events run against the world.
pub type Eng = Engine<World>;

/// Deterministic counters for the mobile-adversary compromise machinery.
///
/// Plain protocol state, not observability: the fuzzer's accounting oracle
/// reads these off the world after untraced runs (concurrent compromises
/// never exceed the budget, cures never exceed compromises, poisoned
/// repairs never exceed repairs served), so they must exist whether or not
/// a trace sink or metric registry is installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompromiseStats {
    /// Takeover transitions performed ([`World::compromise_peer`]).
    pub compromises: u64,
    /// Cure transitions performed ([`World::cure_peer`]).
    pub cures: u64,
    /// Poisoned repair blocks applied at pollers.
    pub poisoned_repairs: u64,
    /// All repair blocks applied at pollers, poisoned or clean — the
    /// denominator for `poisoned_repairs`.
    pub repairs_served: u64,
    /// Peers compromised right now.
    pub concurrent: usize,
    /// High-water mark of concurrently compromised peers.
    pub max_concurrent: usize,
}

/// The complete simulation state.
pub struct World {
    /// The run's configuration. Treat as immutable once the world is
    /// built: the derived-cost table below is snapshotted from `cfg.cost`
    /// at construction, so mutating `cfg.cost` afterwards would silently
    /// desynchronize effort charges from wire sizes. Configure before
    /// `World::new`, as every existing caller does.
    pub cfg: WorldConfig,
    /// Derived costs snapshotted from `cfg.cost` at construction (the
    /// accessors re-derive float identities per call; the protocol reads
    /// them on every invite/ack/vote).
    costs: CostTable,
    pub net: Network,
    /// All loyal peers, struct-of-arrays, indexed by peer index.
    pub peers: PeerTable,
    pub metrics: RunMetrics,
    pub rng: SimRng,
    pub adversary: Option<Box<dyn Adversary>>,
    /// Which sub-strategy of a composite adversary the current timer/event
    /// belongs to (see [`crate::adversary::schedule_adversary_timer`]).
    /// Always 0 for simple adversaries.
    adversary_channel: u64,
    /// The installed trace sink, if this run is being traced. Untraced runs
    /// pay one `Option` null check per emission point and never construct
    /// event payloads (see [`World::trace`]).
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Metric handles (see [`crate::obs`]); unobserved runs pay one null
    /// check per recording site, the same discipline as the trace sink.
    obs: Option<Box<CoreObs>>,
    /// Profiler shared with the runner, for spans around poll evaluation.
    /// Strictly out-of-band: wall-clock only, never read by the protocol.
    profiler: Option<SharedProfiler>,
    /// Mobile-adversary transition counters (see [`CompromiseStats`]).
    compromise: CompromiseStats,
    next_poll_id: u64,
    n_loyal: usize,
    /// Network node → loyal peer index (nodes absent here belong to the
    /// adversary). Lookup-only, so hashing order cannot leak into runs;
    /// probed on every message delivery, hence the fast hasher.
    node_to_peer: lockss_sim::FxHashMap<NodeId, usize>,
}

impl World {
    /// Builds the world: loyal peers with sampled links, pristine replicas,
    /// seeded reference lists and reputation (a steady-state proxy:
    /// everyone starts known-at-even, documented in DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(cfg: WorldConfig) -> World {
        cfg.validate().expect("invalid world configuration");
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut net = Network::new();
        let nodes = match cfg.link_mix {
            Some(mix) => net.add_weighted_nodes(cfg.n_peers, &mix, &mut rng),
            None => net.add_sampled_nodes(cfg.n_peers, &mut rng),
        };

        let n = cfg.n_peers;
        let mut peers = PeerTable::with_capacity(n, cfg.n_aus);
        for (i, node) in nodes.iter().enumerate() {
            let me = Identity::loyal(i as u32);
            // The identity at position `idx` of the virtual "everyone but
            // me" list the samplers draw from; the list itself is never
            // materialized (it cost O(population²) at build).
            let ident =
                |idx: usize| Identity::loyal(if idx < i { idx as u32 } else { idx as u32 + 1 });
            let friends: Vec<Identity> = rng
                .sample_indices(n - 1, cfg.protocol.friends)
                .into_iter()
                .map(ident)
                .collect();
            let mut per_au = Vec::with_capacity(cfg.n_aus);
            for _ in 0..cfg.n_aus {
                let initial: Vec<Identity> = rng
                    .sample_indices(n - 1, cfg.protocol.reflist_initial)
                    .into_iter()
                    .map(ident)
                    .collect();
                let mut au = AuState::new(RefList::new(friends.clone(), initial));
                au.known
                    .assume_population(n as u32, me, Grade::Even, SimTime::ZERO);
                per_au.push(au);
            }
            peers.push(*node, me, per_au, rng.fork());
        }

        let metrics = RunMetrics::new(cfg.total_replicas(), SimTime::ZERO);
        let node_to_peer = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        World {
            costs: cfg.cost.table(),
            cfg,
            net,
            peers,
            metrics,
            rng,
            adversary: None,
            adversary_channel: 0,
            trace_sink: None,
            obs: None,
            profiler: None,
            compromise: CompromiseStats::default(),
            next_poll_id: 0,
            n_loyal: nodes.len(),
            node_to_peer,
        }
    }

    /// Number of loyal peers.
    pub fn n_loyal(&self) -> usize {
        self.n_loyal
    }

    /// Registers a late-joining loyal peer's node (see `churn`).
    pub(crate) fn bump_loyal_count(&mut self) {
        let index = self.peers.len() - 1;
        let node = self.peers.node(index);
        self.node_to_peer.insert(node, index);
        self.n_loyal += 1;
    }

    /// The loyal peer living on `node`, if any.
    pub fn loyal_peer_of_node(&self, node: NodeId) -> Option<usize> {
        self.node_to_peer.get(&node).copied()
    }

    /// Adds `n` adversary minion nodes (well-connected: 100 Mbps, 5 ms)
    /// and returns their ids.
    pub fn add_minions(&mut self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|_| {
                self.net.add_node(lockss_net::LinkSpec {
                    bandwidth_bps: 100_000_000,
                    latency: Duration::from_millis(5),
                })
            })
            .collect()
    }

    /// Installs an attack strategy (call before [`World::start`]).
    pub fn install_adversary(&mut self, adversary: Box<dyn Adversary>) {
        self.adversary = Some(adversary);
    }

    /// The adversary channel the current event is running on (0 unless a
    /// composite adversary stamped a child channel).
    pub fn adversary_channel(&self) -> u64 {
        self.adversary_channel
    }

    /// Stamps the adversary channel for subsequently scheduled adversary
    /// timers. Composite adversaries set this before entering a child
    /// strategy so the child's timers come back routed to it.
    pub fn set_adversary_channel(&mut self, channel: u64) {
        self.adversary_channel = channel;
    }

    /// Installs a trace sink: every causal event of the run from here on is
    /// delivered to it (see [`crate::trace`]). Install before
    /// [`World::start`] to capture the complete stream.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace_sink.take()
    }

    /// True if a trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.trace_sink.is_some()
    }

    /// Installs metric handles: the poll lifecycle, admission verdicts,
    /// and repair traffic are counted from here on. Install before
    /// [`World::start`] for complete totals.
    pub fn set_obs(&mut self, obs: CoreObs) {
        self.obs = Some(Box::new(obs));
    }

    /// The installed metric handles, if any. Recording sites do
    /// `if let Some(o) = world.obs() { ... }` — one null check when off.
    #[inline]
    pub fn obs(&self) -> Option<&CoreObs> {
        self.obs.as_deref()
    }

    /// Shares a profiler with the world; poll evaluation opens spans on
    /// it. The world only ever *writes* wall-clock timings here, so
    /// simulation behaviour is independent of the profiler's presence.
    pub fn set_profiler(&mut self, profiler: SharedProfiler) {
        self.profiler = Some(profiler);
    }

    /// Emits one trace event. The payload closure only runs when a sink is
    /// installed, so untraced runs pay exactly one null check here; a sink
    /// that asks to stop (replay divergence) aborts the engine's run loop.
    #[inline]
    pub(crate) fn trace(&mut self, eng: &mut Eng, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace_sink.as_deref_mut() {
            sink.record(eng.now(), eng.executed(), &make());
            if sink.wants_stop() {
                eng.request_stop();
            }
        }
    }

    /// Declares a provenance-tagged adversary action in the trace (a no-op
    /// untraced). Strategies call this at their decision points — a
    /// stoppage cycle starting, a flood wave launching, a sybil escalation
    /// step — so a trace names *which* adversary move caused what follows.
    pub fn note_adversary_action(&mut self, eng: &mut Eng, label: &'static str, magnitude: u64) {
        if let Some(o) = self.obs() {
            o.adversary_actions.inc();
        }
        let channel = self.adversary_channel;
        self.trace(eng, || TraceEvent::AdversaryAction {
            channel,
            label: label.to_string(),
            magnitude,
        });
    }

    /// Records the start of a named attack phase in the run metrics (used
    /// by phased composite adversaries; see
    /// [`lockss_metrics::summary::RunMetrics::mark_phase`]).
    pub fn mark_phase(&mut self, label: &str, eng: &mut Eng) {
        self.metrics.mark_phase(label, eng.now());
        self.trace(eng, || TraceEvent::PhaseMark {
            label: label.to_string(),
        });
    }

    /// Allocates a globally unique poll id (also used by adversaries for
    /// their bogus polls).
    pub fn alloc_poll_id(&mut self) -> PollId {
        let id = PollId(self.next_poll_id);
        self.next_poll_id += 1;
        id
    }

    /// Charges loyal-peer CPU effort (ledger + run totals).
    pub fn charge_loyal(&mut self, peer: usize, purpose: Purpose, cost: Duration) {
        self.peers.ledger_mut(peer).charge(purpose, cost);
        self.metrics.loyal_effort_secs += cost.as_secs_f64();
    }

    /// Charges adversary CPU effort.
    pub fn charge_adversary(&mut self, cost: Duration) {
        self.metrics.adversary_effort_secs += cost.as_secs_f64();
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// An effort-balancing cost, or zero when the `no_effort_balancing`
    /// ablation is active (requests then cost their sender nothing — the
    /// pre-hardening protocol the paper's §1 recalls being abusable by ~50
    /// malign peers).
    pub fn balanced_effort(&self, d: Duration) -> Duration {
        if self.cfg.protocol.ablation.no_effort_balancing {
            Duration::ZERO
        } else {
            d
        }
    }

    /// Kicks off the run: schedules every peer's first poll per AU at a
    /// random phase (desynchronization), the storage-damage processes, and
    /// the adversary.
    pub fn start(&mut self, eng: &mut Eng) {
        let interval = self.cfg.protocol.poll_interval;
        for p in 0..self.peers.len() {
            for au in 0..self.cfg.n_aus {
                let phase = self.rng.duration_between(Duration::ZERO, interval);
                eng.schedule_at(SimTime::ZERO + phase, move |w: &mut World, e| {
                    w.start_poll(e, p, AuId(au as u32));
                });
            }
            self.schedule_next_damage(eng, p);
        }
        if let Some(mut adv) = self.adversary.take() {
            adv.begin(self, eng);
            self.adversary = Some(adv);
        }
    }

    // ------------------------------------------------------------------
    // Storage damage process (§7.1).
    // ------------------------------------------------------------------

    fn damage_process(&self) -> DamageProcess {
        DamageProcess::paper(self.cfg.mtbf_years, self.cfg.n_aus as u32)
    }

    fn schedule_next_damage(&mut self, eng: &mut Eng, peer: usize) {
        let proc = self.damage_process();
        let wait = proc.next_arrival(&mut self.rng);
        eng.schedule_in(wait, move |w: &mut World, e| {
            w.on_damage_event(e, peer);
        });
    }

    fn on_damage_event(&mut self, eng: &mut Eng, peer: usize) {
        let proc = self.damage_process();
        let blocks = self.cfg.au_spec.blocks();
        let (au, block) = proc.pick_target(&mut self.rng, blocks);
        let replica = &mut self.peers.au_mut(peer, au as usize).replica;
        let was_intact = replica.is_intact();
        replica.damage(block);
        if let Some(o) = self.obs() {
            o.damage_events.inc();
        }
        self.trace(eng, || TraceEvent::Damage {
            peer: peer as u32,
            au,
            block,
            was_intact,
        });
        if was_intact {
            self.metrics.damage.on_damaged(eng.now());
            self.metrics
                .timeline
                .add(eng.now(), RunMetrics::KIND_DAMAGE);
        }
        self.schedule_next_damage(eng, peer);
    }

    // ------------------------------------------------------------------
    // Mobile-adversary compromise state (takeover / cure).
    // ------------------------------------------------------------------

    /// The mobile-adversary transition counters.
    pub fn compromise_stats(&self) -> &CompromiseStats {
        &self.compromise
    }

    /// The mobile adversary takes over loyal peer `p`: each replica is
    /// snapshotted into a lying shadow (the pre-corruption view the peer
    /// votes from while compromised, hiding the takeover from pollers) and
    /// `blocks_per_au` of its real blocks are then corrupted. While
    /// compromised the peer also serves poisoned repairs — see
    /// [`World::poller_on_repair`]'s poison branch.
    ///
    /// Returns false (and changes nothing) if the peer is already
    /// compromised; budget accounting stays exact either way.
    pub fn compromise_peer(&mut self, eng: &mut Eng, p: usize, blocks_per_au: u64) -> bool {
        if self.peers.is_compromised(p) {
            return false;
        }
        self.peers.set_compromised(p, true);
        self.compromise.compromises += 1;
        self.compromise.concurrent += 1;
        self.compromise.max_concurrent = self
            .compromise
            .max_concurrent
            .max(self.compromise.concurrent);
        let blocks = self.cfg.au_spec.blocks() as usize;
        let now = eng.now();
        let mut corrupted = 0u64;
        for au in 0..self.cfg.n_aus {
            // The corruption targets are drawn from the world stream, like
            // the bit-rot damage process.
            let picks: Vec<u64> = (0..blocks_per_au)
                .map(|_| self.rng.below(blocks) as u64)
                .collect();
            let au_state = self.peers.au_mut(p, au);
            au_state.shadow = Some(au_state.replica.clone());
            let was_intact = au_state.replica.is_intact();
            for block in picks {
                if au_state.replica.damage(block) {
                    corrupted += 1;
                }
            }
            if was_intact && !au_state.replica.is_intact() {
                self.metrics.damage.on_damaged(now);
                self.metrics.timeline.add(now, RunMetrics::KIND_DAMAGE);
            }
        }
        if let Some(o) = self.obs() {
            o.compromises.inc();
        }
        self.trace(eng, || TraceEvent::Compromise {
            peer: p as u32,
            corrupted,
        });
        true
    }

    /// Cures peer `p`: loyal behavior is restored (shadows dropped, honest
    /// votes, honest repairs) but the replica damage the takeover left
    /// behind persists — healing it is the §4.3 repair machinery's job,
    /// which is exactly the recovery dynamic the mobile scenarios measure.
    ///
    /// Returns false (and changes nothing) if the peer is not compromised.
    pub fn cure_peer(&mut self, eng: &mut Eng, p: usize) -> bool {
        if !self.peers.is_compromised(p) {
            return false;
        }
        self.peers.set_compromised(p, false);
        self.compromise.cures += 1;
        self.compromise.concurrent -= 1;
        let mut residual = 0u64;
        for au in 0..self.cfg.n_aus {
            let au_state = self.peers.au_mut(p, au);
            au_state.shadow = None;
            residual += au_state.replica.damaged_count() as u64;
        }
        if let Some(o) = self.obs() {
            o.cures.inc();
        }
        self.trace(eng, || TraceEvent::Cure {
            peer: p as u32,
            residual,
        });
        true
    }

    // ------------------------------------------------------------------
    // Messaging.
    // ------------------------------------------------------------------

    /// Sends a protocol message; returns false if suppressed at the source
    /// (pipe stoppage). Delivery re-checks reachability so stoppage kills
    /// in-flight messages too.
    pub fn send_message(&mut self, eng: &mut Eng, from: NodeId, to: NodeId, msg: Message) -> bool {
        let bytes = msg.wire_bytes(&self.cfg.cost);
        let delay = self.net.send(from, to, bytes);
        if let Some(o) = self.obs() {
            if delay.is_none() {
                o.msgs_suppressed.inc();
            } else {
                o.msgs_sent.inc();
            }
        }
        self.trace(eng, || TraceEvent::MessageSend {
            from: from.0,
            to: to.0,
            kind: MsgKind::from(&msg),
            au: msg.au().0,
            poll: msg.poll().0,
            suppressed: delay.is_none(),
        });
        match delay {
            None => false,
            Some(delay) => {
                eng.schedule_in(delay, move |w: &mut World, e| {
                    if !w.net.reachable(from, to) {
                        return; // killed mid-flight by pipe stoppage
                    }
                    w.deliver(e, from, to, msg);
                });
                true
            }
        }
    }

    fn deliver(&mut self, eng: &mut Eng, from: NodeId, to: NodeId, msg: Message) {
        if let Some(p) = self.loyal_peer_of_node(to) {
            self.handle_peer_message(eng, p, from, msg);
        } else if let Some(mut adv) = self.adversary.take() {
            adv.on_message(self, eng, to, from, msg);
            self.adversary = Some(adv);
        }
    }

    fn handle_peer_message(&mut self, eng: &mut Eng, p: usize, from: NodeId, msg: Message) {
        match msg {
            Message::Poll {
                au,
                poll,
                poller,
                intro_valid,
                vote_deadline,
            } => self.voter_on_poll(eng, p, from, au, poll, poller, intro_valid, vote_deadline),
            Message::PollAck { au, poll, accept } => {
                self.poller_on_ack(eng, p, au, poll, from, accept)
            }
            Message::PollProof {
                au,
                poll,
                remaining_valid,
            } => self.voter_on_proof(eng, p, poll, au, remaining_valid),
            Message::Vote {
                au,
                poll,
                voter,
                damage,
                nominations,
                proof_valid,
            } => self.poller_on_vote(eng, p, au, poll, voter, damage, nominations, proof_valid),
            Message::RepairRequest { poll, block, .. } => {
                self.voter_on_repair_request(eng, p, poll, block)
            }
            Message::Repair { au, poll, block } => {
                self.poller_on_repair(eng, p, from, au, poll, block)
            }
            Message::EvaluationReceipt { poll, valid, .. } => {
                self.voter_on_receipt(eng, p, poll, valid)
            }
        }
    }

    /// The network node a loyal identity lives on.
    fn node_of(&self, id: Identity) -> Option<NodeId> {
        id.loyal_index().map(|i| self.peers.node(i as usize))
    }

    // ------------------------------------------------------------------
    // Poller side.
    // ------------------------------------------------------------------

    /// Opens a new poll on `au` at peer `p` (§4.1).
    pub fn start_poll(&mut self, eng: &mut Eng, p: usize, au: AuId) {
        // Copy the handful of scalars this path needs instead of cloning
        // the whole ProtocolConfig per poll.
        let solicit_window = self.cfg.protocol.solicit_window();
        let poll_interval = self.cfg.protocol.poll_interval;
        let inner_circle = self.cfg.protocol.inner_circle;
        let synchronous = self.cfg.protocol.ablation.synchronous_solicitation;
        let now = eng.now();
        self.metrics.polls.register(p as u32, au.0, now);
        if let Some(o) = self.obs() {
            o.polls_started.inc();
        }
        let id = self.alloc_poll_id();
        self.trace(eng, || TraceEvent::PollStart {
            peer: p as u32,
            au: au.0,
            poll: id.0,
        });
        let solicit_deadline = now + solicit_window;
        let conclude_at = now + poll_interval;
        let mut poll = PollState::new(id, au, now, solicit_deadline, conclude_at);

        // Sample the inner circle from the reference list, topped up with
        // friends if the list has shrunk below the circle size.
        let me = self.peers.identity(p);
        let (au_state, rng) = self.peers.au_and_rng_mut(p, au.index());
        let mut circle = au_state.reflist.sample(inner_circle, rng);
        if circle.len() < inner_circle {
            for &f in au_state.reflist.friends() {
                if circle.len() >= inner_circle {
                    break;
                }
                if !circle.contains(&f) && f != me {
                    circle.push(f);
                }
            }
        }
        for v in circle {
            poll.add_invitee(v, true);
        }
        let n = poll.invitees.len();
        au_state.poll = Some(poll);

        // Desynchronization (§5.2): stagger invitations individually over
        // the first 60% of the solicitation window. (The ablation solicits
        // everyone at once — the synchronization failure mode §5.2 warns
        // about.)
        let spread = if synchronous {
            Duration::SECOND * 2
        } else {
            solicit_window.mul_f64(0.6)
        };
        for idx in 0..n {
            let at = now
                + self
                    .peers
                    .rng_mut(p)
                    .duration_between(Duration::SECOND, spread);
            eng.schedule_at(at, move |w: &mut World, e| {
                w.send_invite(e, p, au, id, idx);
            });
        }
        // Outer-circle launch and evaluation checkpoints.
        let outer_at = now + solicit_window.mul_f64(0.62);
        eng.schedule_at(outer_at, move |w: &mut World, e| {
            w.launch_outer(e, p, au, id);
        });
        eng.schedule_at(solicit_deadline, move |w: &mut World, e| {
            w.begin_evaluation(e, p, au, id);
        });
        eng.schedule_at(conclude_at, move |w: &mut World, e| {
            w.conclude_guard(e, p, au, id);
        });
    }

    /// True if the poll `id` is still the live poll for (p, au).
    fn poll_is_current(&self, p: usize, au: AuId, id: PollId) -> bool {
        self.peers
            .au(p, au.index())
            .poll
            .as_ref()
            .map(|poll| poll.id == id)
            .unwrap_or(false)
    }

    /// Generates the introductory effort and sends a Poll invitation
    /// (possibly a retry).
    fn send_invite(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId, idx: usize) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let now = eng.now();
        let (invitee, deadline, attempt) = {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            if poll.phase != PollPhase::Soliciting {
                return;
            }
            let inv = &mut poll.invitees[idx];
            let attempt = match inv.status {
                InviteeStatus::Scheduled { attempt } => attempt,
                InviteeStatus::Refused { attempts } => attempts,
                _ => return, // already in flight or done
            };
            inv.status = InviteeStatus::Invited { attempt };
            (inv.id, poll.solicit_deadline, attempt)
        };
        // Give the voter the vote deadline with a small delivery margin.
        let vote_deadline = deadline.saturating_sub(Duration::MINUTE);
        if now + Duration::MINUTE >= vote_deadline {
            return; // too late in the window to bother
        }

        // The introductory effort occupies the poller's CPU (§5.1).
        let intro = self.balanced_effort(self.costs.intro_gen);
        let res = self.peers.schedule_mut(p).reserve(now, intro);
        self.charge_loyal(p, Purpose::GenIntro, intro);
        let poller_identity = self.peers.identity(p);
        let from = self.peers.node(p);
        eng.schedule_at(res.end, move |w: &mut World, e| {
            if !w.poll_is_current(p, au, id) {
                return;
            }
            let Some(to) = w.node_of(invitee) else { return };
            let sent = w.send_message(
                e,
                from,
                to,
                Message::Poll {
                    au,
                    poll: id,
                    poller: poller_identity,
                    intro_valid: true,
                    vote_deadline,
                },
            );
            // Whether or not the send succeeded (pipe stoppage) or the
            // voter silently drops it, an ack timeout drives the retry.
            let timeout = w.cfg.protocol.invite_timeout;
            e.schedule_in(timeout, move |w: &mut World, e| {
                w.invite_timeout(e, p, au, id, idx, attempt);
            });
            let _ = sent;
        });
    }

    /// PollAck handling (§4.1).
    fn poller_on_ack(
        &mut self,
        eng: &mut Eng,
        p: usize,
        au: AuId,
        id: PollId,
        from: NodeId,
        accept: bool,
    ) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let now = eng.now();
        // Identify the invitee by its node.
        let Some(invitee_identity) = self
            .loyal_peer_of_node(from)
            .map(|i| self.peers.identity(i))
        else {
            return;
        };
        let idx = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            let Some(idx) = poll.invitee_index(invitee_identity) else {
                return;
            };
            idx
        };
        if !accept {
            self.mark_refused_and_maybe_retry(eng, p, au, id, idx);
            return;
        }
        {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            if !matches!(poll.invitees[idx].status, InviteeStatus::Invited { .. }) {
                return;
            }
            poll.invitees[idx].status = InviteeStatus::Accepted;
        }
        // Generate and ship the remaining effort proof (§5.1).
        let remaining = self.balanced_effort(self.costs.remaining_gen);
        let res = self.peers.schedule_mut(p).reserve(now, remaining);
        self.charge_loyal(p, Purpose::GenRemaining, remaining);
        let from_node = self.peers.node(p);
        eng.schedule_at(res.end, move |w: &mut World, e| {
            if !w.poll_is_current(p, au, id) {
                return;
            }
            {
                let poll = w
                    .peers
                    .au_mut(p, au.index())
                    .poll
                    .as_mut()
                    .expect("current");
                let Some(idx) = poll.invitee_index(invitee_identity) else {
                    return;
                };
                if poll.invitees[idx].status != InviteeStatus::Accepted {
                    return;
                }
                poll.invitees[idx].status = InviteeStatus::AwaitingVote;
            }
            let Some(to) = w.node_of(invitee_identity) else {
                return;
            };
            w.send_message(
                e,
                from_node,
                to,
                Message::PollProof {
                    au,
                    poll: id,
                    remaining_valid: true,
                },
            );
        });
    }

    /// No PollAck arrived in time: treat as reluctance and retry later in
    /// the same solicitation phase (§4.1).
    fn invite_timeout(
        &mut self,
        eng: &mut Eng,
        p: usize,
        au: AuId,
        id: PollId,
        idx: usize,
        attempt: u32,
    ) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let stale = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            poll.invitees[idx].status != InviteeStatus::Invited { attempt }
        };
        if stale {
            return;
        }
        self.mark_refused_and_maybe_retry(eng, p, au, id, idx);
    }

    fn mark_refused_and_maybe_retry(
        &mut self,
        eng: &mut Eng,
        p: usize,
        au: AuId,
        id: PollId,
        idx: usize,
    ) {
        let cfg_max = self.cfg.protocol.max_invite_attempts;
        let now = eng.now();
        let do_retry = {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            let attempts = match poll.invitees[idx].status {
                InviteeStatus::Invited { attempt } => attempt + 1,
                InviteeStatus::Scheduled { attempt } => attempt + 1,
                _ => return,
            };
            if attempts >= cfg_max || now + Duration::HOUR * 2 >= poll.solicit_deadline {
                poll.invitees[idx].status = InviteeStatus::Dead;
                false
            } else {
                poll.invitees[idx].status = InviteeStatus::Refused { attempts };
                true
            }
        };
        if do_retry {
            // Spread retries uniformly over what is left of the window.
            let deadline = {
                let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
                poll.solicit_deadline
            };
            let window = deadline.since(now);
            let wait = self
                .peers
                .rng_mut(p)
                .duration_between(Duration::MINUTE * 30, window.max(Duration::HOUR));
            eng.schedule_in(wait, move |w: &mut World, e| {
                w.retry_invite(e, p, au, id, idx);
            });
        }
    }

    fn retry_invite(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId, idx: usize) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let ok = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            matches!(poll.invitees[idx].status, InviteeStatus::Refused { .. })
                && poll.phase == PollPhase::Soliciting
        };
        if ok {
            {
                let poll = self
                    .peers
                    .au_mut(p, au.index())
                    .poll
                    .as_mut()
                    .expect("current");
                if let InviteeStatus::Refused { attempts } = poll.invitees[idx].status {
                    poll.invitees[idx].status = InviteeStatus::Scheduled { attempt: attempts };
                }
            }
            self.send_invite(eng, p, au, id, idx);
        }
    }

    /// A Vote arrived (§4.2): record it and harvest nominations into the
    /// outer-circle pool and the introduction table.
    #[allow(clippy::too_many_arguments)]
    fn poller_on_vote(
        &mut self,
        eng: &mut Eng,
        p: usize,
        au: AuId,
        id: PollId,
        voter: Identity,
        damage: Vec<u64>,
        nominations: Vec<Identity>,
        proof_valid: bool,
    ) {
        if !self.poll_is_current(p, au, id) {
            return; // unsolicited or stale: ignored for free (§5.1)
        }
        let now = eng.now();
        {
            // Vote-flood defense (§5.1): votes from identities we never
            // invited are ignored without any effort.
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            if !poll.has_invitee(voter) {
                return;
            }
        }
        if !proof_valid {
            // Bogus vote from a real invitee: one block hash detects it;
            // penalize and discard.
            self.charge_loyal(p, Purpose::VerifyVoteProof, self.costs.block_hash);
            self.peers.au_mut(p, au.index()).known.penalize(voter, now);
            return;
        }
        // Destructuring splits the borrow: the protocol config is read-only
        // alongside the mutable peer columns, so nothing needs cloning.
        let World { cfg, peers, .. } = self;
        let cfg = &cfg.protocol;
        let me = peers.identity(p);
        let (au_state, rng) = peers.au_and_rng_mut(p, au.index());
        let poll = au_state.poll.as_mut().expect("current");
        if !poll.record_vote(voter, damage) {
            return; // unsolicited or duplicate votes are ignored (§5.1)
        }
        // Harvest nominations: randomly partition into outer-circle
        // candidates and introductions (§5.1).
        for nominee in nominations {
            if nominee == me || nominee == voter || nominee.is_minion() {
                continue;
            }
            if rng.chance(cfg.introduction_frac) {
                au_state.admission.introduce(nominee, voter, now, cfg);
            } else if !poll.nominated_pool.contains(&nominee) {
                poll.nominated_pool.push(nominee);
            }
        }
    }

    /// RepairRequest arrived at a voter (§4.3).
    fn voter_on_repair_request(&mut self, eng: &mut Eng, p: usize, poll: PollId, block: u64) {
        let cfg_max = self.cfg.protocol.max_repairs_served;
        let now = eng.now();
        let (au, poller_node, can) = {
            let Some(s) = self.peers.voting_mut(p).get_mut(&poll) else {
                return;
            };
            let can = s.may_serve_repair(cfg_max);
            if can {
                s.repairs_served += 1;
            }
            (s.au, s.poller_node, can)
        };
        if !can {
            return;
        }
        let cost = self.costs.repair_serve;
        let res = self.peers.schedule_mut(p).reserve(now, cost);
        self.charge_loyal(p, Purpose::ServeRepair, cost);
        let from = self.peers.node(p);
        eng.schedule_at(res.end, move |w: &mut World, e| {
            w.send_message(e, from, poller_node, Message::Repair { au, poll, block });
        });
    }

    /// A Repair block arrived at the poller (§4.3). `from` is the serving
    /// node: a block handed over by a *currently compromised* peer is
    /// poison — applying it leaves the target block damaged (and damages
    /// it if it was intact, the frivolous-repair infection vector). The
    /// apply effort is charged either way; the poller cannot tell.
    fn poller_on_repair(
        &mut self,
        eng: &mut Eng,
        p: usize,
        from: NodeId,
        au: AuId,
        id: PollId,
        block: u64,
    ) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let now = eng.now();
        let cost = self.costs.repair_apply;
        self.charge_loyal(p, Purpose::ApplyRepair, cost);
        let _ = now;
        self.compromise.repairs_served += 1;
        let server = self.loyal_peer_of_node(from);
        let poisoned = server
            .map(|s| self.peers.is_compromised(s))
            .unwrap_or(false);
        if poisoned {
            let server = server.expect("poisoned implies a loyal-table server") as u32;
            let newly_damaged = {
                let au_state = self.peers.au_mut(p, au.index());
                let was_intact = au_state.replica.is_intact();
                au_state.replica.damage(block);
                was_intact && !au_state.replica.is_intact()
            };
            self.compromise.poisoned_repairs += 1;
            if let Some(o) = self.obs() {
                o.poisoned_repairs.inc();
            }
            self.trace(eng, || TraceEvent::PoisonedRepair {
                peer: p as u32,
                au: au.0,
                poll: id.0,
                block,
                server,
            });
            if newly_damaged {
                self.metrics.damage.on_damaged(eng.now());
                self.metrics
                    .timeline
                    .add(eng.now(), RunMetrics::KIND_DAMAGE);
            }
        } else {
            let became_intact = {
                let au_state = self.peers.au_mut(p, au.index());
                let was_intact = au_state.replica.is_intact();
                au_state.replica.repair(block);
                !was_intact && au_state.replica.is_intact()
            };
            if let Some(o) = self.obs() {
                o.repairs_applied.inc();
            }
            self.trace(eng, || TraceEvent::Repair {
                peer: p as u32,
                au: au.0,
                poll: id.0,
                block,
                intact_after: became_intact,
            });
            if became_intact {
                self.metrics.damage.on_repaired(eng.now());
                self.metrics
                    .timeline
                    .add(eng.now(), RunMetrics::KIND_REPAIR);
            }
        }
        let done = {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            poll.pending_repairs = poll.pending_repairs.saturating_sub(1);
            poll.phase == PollPhase::Repairing && poll.pending_repairs == 0
        };
        if done {
            self.finalize_poll(eng, p, au, id);
        }
    }

    /// Launches the outer circle (§4.2): solicit votes from discovered
    /// peers to observe their behaviour.
    fn launch_outer(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let outer_n = self.cfg.protocol.outer_circle;
        let now = eng.now();
        let candidates: Vec<Identity> = {
            let me = self.peers.identity(p);
            let au_state = self.peers.au(p, au.index());
            let poll = au_state.poll.as_ref().expect("current");
            let mut pool: Vec<Identity> = poll
                .nominated_pool
                .iter()
                .copied()
                .filter(|&c| c != me && !au_state.reflist.contains(c) && !poll.has_invitee(c))
                .collect();
            pool.dedup();
            pool
        };
        let picked = self.peers.rng_mut(p).sample(&candidates, outer_n);
        let deadline = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            poll.solicit_deadline
        };
        let window = deadline.since(now).mul_f64(0.7);
        for v in picked {
            let idx = {
                let poll = self
                    .peers
                    .au_mut(p, au.index())
                    .poll
                    .as_mut()
                    .expect("current");
                if poll.has_invitee(v) {
                    continue;
                }
                poll.add_invitee(v, false)
            };
            let at = now
                + self
                    .peers
                    .rng_mut(p)
                    .duration_between(Duration::SECOND, window);
            eng.schedule_at(at, move |w: &mut World, e| {
                w.send_invite(e, p, au, id, idx);
            });
        }
        if self.poll_is_current(p, au, id) {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            poll.outer_launched = true;
        }
    }

    /// Solicitation window closed: evaluate (§4.3).
    fn begin_evaluation(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let _span = Span::enter(&self.profiler, "poll-evaluate");
        let now = eng.now();
        // Penalize invitees that committed but never delivered (§5.1).
        let deserters = {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            if poll.phase != PollPhase::Soliciting {
                return;
            }
            poll.phase = PollPhase::Evaluating;
            poll.committed_non_voters()
        };
        {
            let decay = self.cfg.protocol.grade_decay;
            let _ = decay;
            let au_state = self.peers.au_mut(p, au.index());
            for d in deserters {
                au_state.known.penalize(d, now);
            }
        }
        let n_votes = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            poll.votes.len()
        };
        if n_votes == 0 {
            // Nothing to evaluate; conclude as failed.
            self.finalize_poll(eng, p, au, id);
            return;
        }
        let proof_checks = self.balanced_effort(self.costs.vote_proof_verify * n_votes as u64);
        let cost = self.costs.au_hash + proof_checks;
        let res = self.peers.schedule_mut(p).reserve(now, cost);
        self.charge_loyal(p, Purpose::Evaluate, self.costs.au_hash);
        self.charge_loyal(p, Purpose::VerifyVoteProof, proof_checks);
        eng.schedule_at(res.end, move |w: &mut World, e| {
            w.tally(e, p, au, id);
        });
    }

    /// Block-wise tally and repair planning (§4.3).
    fn tally(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let quorum = self.cfg.protocol.quorum;
        let frivolous_p = self.cfg.protocol.frivolous_repair_prob;
        let blocks = self.cfg.au_spec.blocks();
        let now = eng.now();

        let (inner_votes, my_damage) = {
            let au_state = self.peers.au(p, au.index());
            let poll = au_state.poll.as_ref().expect("current");
            (poll.inner_votes(), au_state.replica.snapshot())
        };

        let mut repair_plan: Vec<(u64, Identity)> = Vec::new();
        let mut unrepairable = 0u32;
        if inner_votes >= quorum {
            // Every damaged block of our replica meets landslide
            // disagreement (damaged content never matches anyone): fetch a
            // repair from a voter whose vote shows the block intact.
            let (au_state, rng) = self.peers.au_and_rng_mut(p, au.index());
            let poll = au_state.poll.as_ref().expect("current");
            for block in my_damage {
                let candidates = poll.repair_candidates(block);
                match rng.choose(&candidates) {
                    Some(&v) => repair_plan.push((block, v)),
                    None => unrepairable += 1,
                }
            }
            // Frivolous repair (§4.3): keep voters honest about serving.
            if rng.chance(frivolous_p) && !poll.votes.is_empty() {
                let block = rng.below(blocks as usize) as u64;
                let pick = rng.below(poll.votes.len());
                let v = poll.votes[pick].voter;
                repair_plan.push((block, v));
            }
        }

        {
            let poll = self
                .peers
                .au_mut(p, au.index())
                .poll
                .as_mut()
                .expect("current");
            poll.phase = PollPhase::Repairing;
            poll.pending_repairs = repair_plan.len() as u32;
            poll.unrepairable = unrepairable;
        }
        let from = self.peers.node(p);
        let _ = now;
        if repair_plan.is_empty() {
            self.finalize_poll(eng, p, au, id);
            return;
        }
        for (block, voter) in repair_plan {
            if let Some(o) = self.obs() {
                o.repairs_requested.inc();
            }
            let Some(to) = self.node_of(voter) else {
                let poll = self
                    .peers
                    .au_mut(p, au.index())
                    .poll
                    .as_mut()
                    .expect("current");
                poll.pending_repairs -= 1;
                continue;
            };
            self.send_message(
                eng,
                from,
                to,
                Message::RepairRequest {
                    au,
                    poll: id,
                    block,
                },
            );
        }
        let still_pending = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            poll.pending_repairs
        };
        if still_pending == 0 {
            self.finalize_poll(eng, p, au, id);
        }
    }

    /// Hard conclusion: if repairs (or evaluation) are stuck at the poll's
    /// scheduled end, finish anyway; the next poll starts on time
    /// (autonomous rate limitation).
    fn conclude_guard(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let phase = {
            let poll = self.peers.au(p, au.index()).poll.as_ref().expect("current");
            poll.phase
        };
        if phase != PollPhase::Finished {
            self.finalize_poll(eng, p, au, id);
        }
    }

    /// Concludes the poll (§4.3): receipts, grades, reference-list update,
    /// metrics, and the next poll's schedule.
    fn finalize_poll(&mut self, eng: &mut Eng, p: usize, au: AuId, id: PollId) {
        if !self.poll_is_current(p, au, id) {
            return;
        }
        let _span = Span::enter(&self.profiler, "poll-finalize");
        // Scalar copies instead of a whole-config clone; the one helper
        // that takes `&ProtocolConfig` gets it through a split borrow below.
        let quorum = self.cfg.protocol.quorum;
        let max_disagree = self.cfg.protocol.max_disagree;
        let grade_decay = self.cfg.protocol.grade_decay;
        let poll_interval = self.cfg.protocol.poll_interval;
        let now = eng.now();

        let poll = {
            let au_state = self.peers.au_mut(p, au.index());
            let mut poll = au_state.poll.take().expect("current");
            poll.phase = PollPhase::Finished;
            poll
        };

        let my_damage = self.peers.au(p, au.index()).replica.snapshot();
        let inner_votes = poll.inner_votes();
        let disagreeing = poll.inner_disagreements(&my_damage);
        let quorate = inner_votes >= quorum;
        let landslide_win = quorate && disagreeing <= max_disagree;
        let landslide_loss = quorate && disagreeing >= inner_votes.saturating_sub(max_disagree);
        let inconclusive = quorate && !landslide_win && !landslide_loss;
        let n_votes = poll.votes.len() as u32;
        if let Some(o) = self.obs() {
            if landslide_win {
                o.polls_win.inc();
            } else if landslide_loss {
                o.polls_loss.inc();
            } else if inconclusive {
                o.polls_inconclusive.inc();
            } else {
                o.polls_inquorate.inc();
            }
            o.poll_votes.observe(n_votes as u64);
        }
        self.trace(eng, || TraceEvent::PollOutcome {
            peer: p as u32,
            au: au.0,
            poll: id.0,
            conclusion: if landslide_win {
                PollConclusion::Win
            } else if landslide_loss {
                PollConclusion::Loss
            } else if inconclusive {
                PollConclusion::Inconclusive
            } else {
                PollConclusion::Inquorate
            },
            votes: n_votes,
        });

        // Grades: every voter that supplied a valid vote is raised (§5.1).
        {
            let au_state = self.peers.au_mut(p, au.index());
            for v in &poll.votes {
                au_state.known.raise(v.voter, now, grade_decay);
            }
        }

        // Receipts: the MBF byproduct of evaluation (§5.1); evaluation was
        // already charged, so receipts cost only the send.
        let from = self.peers.node(p);
        let voters: Vec<Identity> = poll.votes.iter().map(|v| v.voter).collect();
        for v in &voters {
            if let Some(to) = self.node_of(*v) {
                self.send_message(
                    eng,
                    from,
                    to,
                    Message::EvaluationReceipt {
                        au,
                        poll: id,
                        valid: true,
                    },
                );
            }
        }

        // Reference-list update only on a decisive outcome (§4.3).
        if landslide_win {
            let agreeing_outer = poll.agreeing_outer(&my_damage);
            let decisive = poll.decisive_voters();
            let World { cfg, peers, .. } = self;
            let (au_state, rng) = peers.au_and_rng_mut(p, au.index());
            au_state
                .reflist
                .conclude_poll(&decisive, &agreeing_outer, &cfg.protocol, rng);
        }

        // Metrics.
        if landslide_win {
            self.metrics.polls.on_success(p as u32, au.0, now);
            self.metrics.timeline.add(now, RunMetrics::KIND_SUCCESS);
        } else {
            self.metrics.polls.on_failure();
            self.metrics.timeline.add(now, RunMetrics::KIND_FAILURE);
            if inconclusive || landslide_loss {
                // A loss should have been repaired away; both raise alarms.
                self.metrics.polls.on_alarm();
            }
        }

        // Next poll: autonomous fixed rate with jitter (§5.1).
        let jitter = self.cfg.protocol.interval_jitter;
        let next_start = poll.started + self.peers.rng_mut(p).jitter(poll_interval, jitter);
        let at = next_start.max(now + Duration::SECOND);
        eng.schedule_at(at, move |w: &mut World, e| {
            w.start_poll(e, p, au);
        });
    }

    // ------------------------------------------------------------------
    // Voter side.
    // ------------------------------------------------------------------

    /// An invitation arrived (§5.1 admission control, then commitment).
    #[allow(clippy::too_many_arguments)]
    fn voter_on_poll(
        &mut self,
        eng: &mut Eng,
        p: usize,
        from: NodeId,
        au: AuId,
        id: PollId,
        poller: Identity,
        intro_valid: bool,
        vote_deadline: SimTime,
    ) {
        let now = eng.now();
        if self.peers.voting(p).contains_key(&id) {
            return; // duplicate invitation for an existing commitment
        }
        // Admission filter. The split borrow passes the config by reference
        // alongside the mutable peer columns — no per-invitation clone.
        let outcome = {
            let World { cfg, peers, .. } = self;
            let (au_state, rng) = peers.au_and_rng_mut(p, au.index());
            au_state
                .admission
                .filter(poller, &au_state.known, now, &cfg.protocol, rng)
        };
        if let Some(o) = self.obs() {
            match outcome {
                AdmissionOutcome::Admitted {
                    via_introduction: true,
                } => o.admission_introduced.inc(),
                AdmissionOutcome::Admitted {
                    via_introduction: false,
                } => o.admission_admitted.inc(),
                AdmissionOutcome::RandomDrop => o.admission_random_drop.inc(),
                AdmissionOutcome::Refractory => o.admission_refractory.inc(),
                AdmissionOutcome::RateLimited => o.admission_rate_limited.inc(),
            }
        }
        self.trace(eng, || TraceEvent::Admission {
            peer: p as u32,
            poller: poller.0,
            verdict: match outcome {
                AdmissionOutcome::Admitted {
                    via_introduction: true,
                } => AdmissionVerdict::AdmittedIntroduced,
                AdmissionOutcome::Admitted {
                    via_introduction: false,
                } => AdmissionVerdict::Admitted,
                AdmissionOutcome::RandomDrop => AdmissionVerdict::RandomDrop,
                AdmissionOutcome::Refractory => AdmissionVerdict::Refractory,
                AdmissionOutcome::RateLimited => AdmissionVerdict::RateLimited,
            },
        });
        let via_introduction = match outcome {
            AdmissionOutcome::Admitted { via_introduction } => via_introduction,
            // Silent for the sender; free for us.
            AdmissionOutcome::RandomDrop
            | AdmissionOutcome::Refractory
            | AdmissionOutcome::RateLimited => return,
        };

        // §9 adaptive acceptance (off by default): the busier we already
        // are, the likelier we refuse — raising the attacker's marginal
        // cost of increasing our busyness. The admission (and any intro
        // effort the poller spent) is already consumed.
        if self.cfg.protocol.adaptive_acceptance {
            let window = self.cfg.protocol.adaptive_window;
            let busy = self.peers.schedule(p).busy_within(now, window);
            let fraction = (busy / window).min(0.95);
            if self.peers.rng_mut(p).chance(fraction) {
                let from_node = self.peers.node(p);
                self.send_message(
                    eng,
                    from_node,
                    from,
                    Message::PollAck {
                        au,
                        poll: id,
                        accept: false,
                    },
                );
                return;
            }
        }

        // Consideration: session + introductory-effort verification.
        self.charge_loyal(p, Purpose::Consider, self.costs.consider);
        if !intro_valid {
            // Garbage proof: cheap detection, then reject. The refractory
            // period was already triggered by the admission — which is the
            // entire point of the §7.3 attack.
            let detect = self.balanced_effort(self.costs.bogus_intro_detect);
            self.charge_loyal(p, Purpose::VerifyIntro, detect);
            return;
        }
        let verify = self.balanced_effort(self.costs.intro_verify);
        self.charge_loyal(p, Purpose::VerifyIntro, verify);

        // Schedule check (§5.1): the whole vote-service computation must
        // fit before the deadline.
        let vote_cost = self.balanced_effort(self.costs.remaining_verify)
            + self.costs.au_hash
            + self.balanced_effort(self.costs.vote_proof_gen);
        let reservation = self.peers.schedule_mut(p).try_reserve(
            now,
            now,
            vote_deadline.saturating_sub(Duration::MINUTE),
            vote_cost,
        );
        let from_node = self.peers.node(p);
        let Some(reservation) = reservation else {
            self.send_message(
                eng,
                from_node,
                from,
                Message::PollAck {
                    au,
                    poll: id,
                    accept: false,
                },
            );
            return;
        };

        let session = VoterSession::new(
            au,
            poller,
            from,
            reservation,
            vote_deadline,
            via_introduction,
        );
        self.peers.voting_mut(p).insert(id, session);
        self.send_message(
            eng,
            from_node,
            from,
            Message::PollAck {
                au,
                poll: id,
                accept: true,
            },
        );
        // If the poller deserts (INTRO strategy), release the reservation
        // and penalize (§5.1 reservation attack defense).
        let timeout = self.cfg.protocol.proof_timeout;
        eng.schedule_in(timeout, move |w: &mut World, e| {
            w.voter_proof_timeout(e, p, id);
        });
    }

    fn voter_proof_timeout(&mut self, eng: &mut Eng, p: usize, id: PollId) {
        let now = eng.now();
        let (cancel, au, poller) = {
            let Some(s) = self.peers.voting(p).get(&id) else {
                return;
            };
            if s.stage != VoterStage::AwaitingProof {
                return;
            }
            (s.reservation, s.au, s.poller)
        };
        self.peers.schedule_mut(p).cancel(cancel);
        self.peers.voting_mut(p).remove(&id);
        self.peers.au_mut(p, au.index()).known.penalize(poller, now);
        let _ = eng;
    }

    /// The PollProof arrived: the vote computation occupies the reserved
    /// slot (§4.1).
    fn voter_on_proof(
        &mut self,
        eng: &mut Eng,
        p: usize,
        id: PollId,
        au: AuId,
        remaining_valid: bool,
    ) {
        let now = eng.now();
        let compute_done = {
            let Some(s) = self.peers.voting_mut(p).get_mut(&id) else {
                return;
            };
            if s.stage != VoterStage::AwaitingProof || s.au != au {
                return;
            }
            if !remaining_valid {
                // Bogus remaining proof: abort, penalize.
                let res = s.reservation;
                let poller = s.poller;
                self.peers.schedule_mut(p).cancel(res);
                self.peers.voting_mut(p).remove(&id);
                self.peers.au_mut(p, au.index()).known.penalize(poller, now);
                return;
            }
            s.stage = VoterStage::ComputingVote;
            s.reservation.end.max(now)
        };
        eng.schedule_at(compute_done, move |w: &mut World, e| {
            w.voter_vote_computed(e, p, id);
        });
    }

    fn voter_vote_computed(&mut self, eng: &mut Eng, p: usize, id: PollId) {
        let now = eng.now();
        let (au, poller_node, vote_deadline) = {
            let Some(s) = self.peers.voting_mut(p).get_mut(&id) else {
                return;
            };
            if s.stage != VoterStage::ComputingVote {
                return;
            }
            s.stage = VoterStage::AwaitingReceipt;
            (s.au, s.poller_node, s.vote_deadline)
        };
        // Charge the vote-service compute (the reserved slot).
        let verify_remaining = self.balanced_effort(self.costs.remaining_verify);
        self.charge_loyal(p, Purpose::VerifyRemaining, verify_remaining);
        self.charge_loyal(p, Purpose::ComputeVote, self.costs.au_hash);
        let gen_proof = self.balanced_effort(self.costs.vote_proof_gen);
        self.charge_loyal(p, Purpose::GenVoteProof, gen_proof);

        let (damage, nominations, from, me) = {
            let from = self.peers.node(p);
            let me = self.peers.identity(p);
            let compromised = self.peers.is_compromised(p);
            let nominations_k = self.cfg.protocol.nominations;
            let (au_state, rng) = self.peers.au_and_rng_mut(p, au.index());
            // A compromised peer votes from the lying shadow snapshot —
            // hiding its corruption and volunteering as a repair candidate
            // for blocks it will then poison.
            let damage = match &au_state.shadow {
                Some(shadow) if compromised => shadow.snapshot(),
                _ => au_state.replica.snapshot(),
            };
            let noms = au_state.reflist.nominate(nominations_k, rng);
            (damage, noms, from, me)
        };
        self.send_message(
            eng,
            from,
            poller_node,
            Message::Vote {
                au,
                poll: id,
                voter: me,
                damage,
                nominations,
                proof_valid: true,
            },
        );
        // Expect the receipt within the poll's remaining lifetime.
        let slack = self.cfg.protocol.receipt_slack + self.cfg.protocol.poll_interval.mul_f64(0.35);
        let deadline = vote_deadline + slack;
        let _ = now;
        eng.schedule_at(deadline, move |w: &mut World, e| {
            w.voter_receipt_deadline(e, p, id);
        });
    }

    fn voter_receipt_deadline(&mut self, eng: &mut Eng, p: usize, id: PollId) {
        let now = eng.now();
        let Some(s) = self.peers.voting(p).get(&id) else {
            return;
        };
        if s.stage != VoterStage::AwaitingReceipt {
            return;
        }
        let (au, poller) = (s.au, s.poller);
        self.peers.voting_mut(p).remove(&id);
        // Wasteful-strategy defense (§5.1): no receipt, straight to debt.
        self.peers.au_mut(p, au.index()).known.penalize(poller, now);
        let _ = eng;
    }

    fn voter_on_receipt(&mut self, eng: &mut Eng, p: usize, id: PollId, valid: bool) {
        let now = eng.now();
        let Some(s) = self.peers.voting(p).get(&id) else {
            return;
        };
        if s.stage != VoterStage::AwaitingReceipt {
            return;
        }
        let (au, poller) = (s.au, s.poller);
        self.peers.voting_mut(p).remove(&id);
        let decay = self.cfg.protocol.grade_decay;
        let au_state = self.peers.au_mut(p, au.index());
        if valid {
            // Completed exchange: we supplied a vote, the poller consumed
            // it — its grade at us drops one step (§5.1 reciprocity).
            au_state.known.lower(poller, now, decay);
        } else {
            au_state.known.penalize(poller, now);
        }
        let _ = eng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_storage::AuSpec;

    /// A small, fast world for end-to-end protocol tests.
    pub(crate) fn small_config(seed: u64) -> WorldConfig {
        let au_spec = AuSpec {
            size_bytes: 50_000_000, // 50 MB AUs hash in ~1.7 s
            block_bytes: 1_000_000,
        };
        let mut cfg = WorldConfig {
            n_peers: 30,
            n_aus: 2,
            au_spec,
            mtbf_years: 1.0,
            seed,
            ..WorldConfig::default()
        };
        cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
        cfg.protocol.poll_interval = Duration::from_days(30);
        cfg.protocol.grade_decay = Duration::from_days(60);
        cfg.validate().expect("valid");
        cfg
    }

    fn run_world(cfg: WorldConfig, length: Duration) -> (World, SimTime) {
        let mut world = World::new(cfg);
        let mut eng = Eng::new();
        world.start(&mut eng);
        let end = SimTime::ZERO + length;
        eng.run_until(&mut world, end);
        (world, end)
    }

    #[test]
    fn polls_succeed_absent_attack() {
        let (world, end) = run_world(small_config(42), Duration::from_days(180));
        let s = world.metrics.summarize(end);
        assert!(
            s.successful_polls > 100,
            "expected many successful polls, got {} (failed {})",
            s.successful_polls,
            s.failed_polls
        );
        let rate = s.successful_polls as f64 / (s.successful_polls + s.failed_polls) as f64;
        assert!(rate > 0.9, "success rate {rate}");
        assert_eq!(s.alarms, 0, "honest network must not alarm");
    }

    #[test]
    fn damage_gets_repaired() {
        let (world, end) = run_world(small_config(7), Duration::from_days(360));
        let s = world.metrics.summarize(end);
        // MTBF 1 year/disk over 2 AUs at 30-day polls: damage must occur...
        let damaged_now = world.peers.total_damaged();
        // ...and be repaired promptly: the steady-state damaged fraction
        // should be near rate * mean-detection-delay, far below 10%.
        assert!(
            s.access_failure_probability < 0.05,
            "failure probability {}",
            s.access_failure_probability
        );
        assert!(
            damaged_now <= 4,
            "damage should not accumulate: {damaged_now} damaged now"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (wa, end) = run_world(small_config(5), Duration::from_days(120));
        let (wb, _) = run_world(small_config(5), Duration::from_days(120));
        let sa = wa.metrics.summarize(end);
        let sb = wb.metrics.summarize(end);
        assert_eq!(sa.successful_polls, sb.successful_polls);
        assert_eq!(sa.failed_polls, sb.failed_polls);
        assert!((sa.loyal_effort_secs - sb.loyal_effort_secs).abs() < 1e-9);
        assert!((sa.access_failure_probability - sb.access_failure_probability).abs() < 1e-15);
    }

    #[test]
    fn different_seeds_differ() {
        let (wa, end) = run_world(small_config(1), Duration::from_days(120));
        let (wb, _) = run_world(small_config(2), Duration::from_days(120));
        let sa = wa.metrics.summarize(end);
        let sb = wb.metrics.summarize(end);
        assert!(
            sa.loyal_effort_secs != sb.loyal_effort_secs
                || sa.successful_polls != sb.successful_polls
        );
    }

    #[test]
    fn pipe_stopped_world_makes_no_progress() {
        let cfg = small_config(9);
        let mut world = World::new(cfg);
        let mut eng = Eng::new();
        world.start(&mut eng);
        // Stop every peer for the whole run.
        for i in 0..world.n_loyal() {
            let node = world.peers.node(i);
            world.net.set_stopped(node, true);
        }
        let end = SimTime::ZERO + Duration::from_days(120);
        eng.run_until(&mut world, end);
        let s = world.metrics.summarize(end);
        assert_eq!(s.successful_polls, 0, "no communication, no polls");
        assert!(s.failed_polls > 0, "polls were attempted and failed");
    }

    #[test]
    fn effort_is_charged() {
        let (world, end) = run_world(small_config(11), Duration::from_days(90));
        let s = world.metrics.summarize(end);
        assert!(s.loyal_effort_secs > 0.0);
        assert_eq!(s.adversary_effort_secs, 0.0);
        // Every peer should have spent something (all poll and vote).
        for p in 0..world.peers.len() {
            assert!(
                world.peers.ledger(p).total_secs() > 0.0,
                "peer {:?} idle",
                world.peers.identity(p)
            );
        }
    }

    #[test]
    fn minions_and_poll_ids() {
        let mut world = World::new(small_config(13));
        let minions = world.add_minions(3);
        assert_eq!(minions.len(), 3);
        for m in &minions {
            assert!(m.index() >= world.n_loyal());
        }
        let a = world.alloc_poll_id();
        let b = world.alloc_poll_id();
        assert_ne!(a, b);
    }

    #[test]
    fn compromise_and_cure_transitions() {
        let mut world = World::new(small_config(21));
        let mut eng = Eng::new();
        assert_eq!(world.compromise_stats(), &CompromiseStats::default());

        assert!(world.compromise_peer(&mut eng, 3, 2));
        assert!(world.peers.is_compromised(3));
        // Double takeover is a no-op: budget accounting stays exact.
        assert!(!world.compromise_peer(&mut eng, 3, 2));
        let s = *world.compromise_stats();
        assert_eq!((s.compromises, s.concurrent, s.max_concurrent), (1, 1, 1));
        // Shadows snapshot the pre-corruption view; the real replicas are
        // corrupted underneath them.
        assert!(world.peers.aus(3).iter().all(|a| a.shadow.is_some()));
        assert!(
            world.peers.aus(3).iter().any(|a| !a.replica.is_intact()),
            "takeover must corrupt"
        );
        assert!(world
            .peers
            .aus(3)
            .iter()
            .all(|a| a.shadow.as_ref().unwrap().is_intact()));

        assert!(world.cure_peer(&mut eng, 3));
        assert!(!world.peers.is_compromised(3));
        assert!(!world.cure_peer(&mut eng, 3));
        let s = *world.compromise_stats();
        assert_eq!((s.cures, s.concurrent, s.max_concurrent), (1, 0, 1));
        // Cure ≠ heal: shadows are gone but the damage persists.
        assert!(world.peers.aus(3).iter().all(|a| a.shadow.is_none()));
        assert!(world.peers.damaged_replicas(3) > 0);
    }

    #[test]
    fn compromised_votes_lie_and_repairs_poison() {
        // Drive a full run with a statically compromised peer set and
        // check the poison plumbing end to end via the world counters.
        let cfg = small_config(23);
        let mut world = World::new(cfg);
        let mut eng = Eng::new();
        world.start(&mut eng);
        for p in 0..6 {
            world.compromise_peer(&mut eng, p, 2);
        }
        let end = SimTime::ZERO + Duration::from_days(240);
        eng.run_until(&mut world, end);
        let s = *world.compromise_stats();
        assert_eq!(s.compromises, 6);
        assert_eq!(s.max_concurrent, 6);
        assert!(
            s.poisoned_repairs > 0,
            "compromised repair candidates must have poisoned at least one block"
        );
        // Poison keeps the compromised peers' corruption in place: damage
        // accumulates instead of healing away.
        assert!(world.peers.total_damaged() > 0);
    }

    /// A 10k-peer world builds quickly and stays sparse: construction is
    /// O(population × reference-list size), and the founding-population
    /// reputation rule materializes zero entries.
    #[test]
    fn ten_thousand_peer_world_builds_sparse() {
        let mut cfg = WorldConfig {
            n_peers: 10_000,
            n_aus: 1,
            seed: 3,
            ..WorldConfig::default()
        };
        cfg.link_mix = Some([0.6, 0.3, 0.1]);
        let world = World::new(cfg);
        assert_eq!(world.peers.len(), 10_000);
        let occ = world.peers.occupancy();
        assert_eq!(occ.known_entries, 0, "reputation must start lazy");
        assert_eq!(
            occ.reflist_entries,
            10_000 * ProtocolConfig::default().reflist_initial
        );
        // The steady-state proxy still holds: a founding peer sees any
        // other founder as known-at-even.
        let standing = world.peers.au(0, 0).known.standing(
            Identity::loyal(9_999),
            SimTime::ZERO,
            world.cfg.protocol.grade_decay,
        );
        assert_eq!(
            standing,
            crate::reputation::Standing::Known(Grade::Even),
            "founding population must read known-at-even"
        );
    }

    use crate::config::ProtocolConfig;
}

//! Per-peer state, stored struct-of-arrays.
//!
//! [`PeerTable`] holds every loyal peer's hot state in parallel columns
//! keyed by the peer index, with per-AU protocol state flattened
//! peer-major into one contiguous vector. Compared with the former
//! `Vec<Peer>`-of-structs layout this removes one `Vec` allocation per
//! peer, keeps the fields a code path actually touches adjacent in memory,
//! and — because the columns are separate borrows — replaces the
//! `&mut peer.x / &mut peer.y` split-borrow gymnastics of the poll path
//! with plain method calls. Nothing on the poll path is boxed per peer;
//! 10k–100k-peer worlds are a handful of large flat allocations.

use std::collections::BTreeMap;

use lockss_effort::EffortLedger;
use lockss_net::NodeId;
use lockss_sim::SimRng;
use lockss_storage::Replica;

use crate::admission::AdmissionControl;
use crate::poller::PollState;
use crate::reflist::RefList;
use crate::reputation::KnownPeers;
use crate::schedule::TaskSchedule;
use crate::types::Identity;
use crate::voter::{VoterKey, VoterSession};

/// Per-AU state of one peer.
#[derive(Clone, Debug)]
pub struct AuState {
    pub replica: Replica,
    /// While the peer is compromised, the lying view it votes from: a
    /// snapshot of the replica taken at compromise time, *before* the
    /// adversary corrupted it. `None` whenever the peer is loyal.
    pub shadow: Option<Replica>,
    pub known: KnownPeers,
    pub admission: AdmissionControl,
    pub reflist: RefList,
    /// The in-flight poll this peer is running on this AU, if any.
    pub poll: Option<PollState>,
}

impl AuState {
    /// Fresh per-AU state with the given reference list.
    pub fn new(reflist: RefList) -> AuState {
        AuState {
            replica: Replica::pristine(),
            shadow: None,
            known: KnownPeers::new(),
            admission: AdmissionControl::new(),
            reflist,
            poll: None,
        }
    }
}

/// Heap occupancy of a [`PeerTable`], for `--mem-report` style diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableOccupancy {
    /// Peers in the table.
    pub peers: usize,
    /// AUs per peer.
    pub aus_per_peer: usize,
    /// Materialized reputation entries across all (peer, AU) cells (the
    /// lazy founding-population default adds none).
    pub known_entries: usize,
    /// Reference-list members across all cells.
    pub reflist_entries: usize,
    /// Polls currently in flight.
    pub live_polls: usize,
    /// Voter-side commitments currently open.
    pub voter_sessions: usize,
}

/// All loyal peers, struct-of-arrays.
///
/// Columns are indexed by the peer's index (its handle everywhere in the
/// protocol layer); per-AU state lives flattened at `peer * n_aus + au`.
pub struct PeerTable {
    n_aus: usize,
    node: Vec<NodeId>,
    identity: Vec<Identity>,
    /// Single-CPU commitment calendar (shared across all AUs — the §6.3
    /// resource contention between concurrently preserved AUs).
    schedule: Vec<TaskSchedule>,
    ledger: Vec<EffortLedger>,
    /// Active voter commitments, keyed by poll. A `BTreeMap` keyed by
    /// `PollId` so any future iteration is deterministic by construction.
    voting: Vec<BTreeMap<VoterKey, VoterSession>>,
    /// Each peer's private randomness stream.
    rng: Vec<SimRng>,
    /// True while the mobile adversary occupies this peer: it votes from
    /// the corrupted shadow replicas and serves poisoned repairs. Flipped
    /// only by [`crate::world::World::compromise_peer`] /
    /// [`crate::world::World::cure_peer`].
    compromised: Vec<bool>,
    /// Flattened per-AU state, peer-major.
    au: Vec<AuState>,
}

impl PeerTable {
    /// An empty table for worlds with `n_aus` AUs per peer.
    pub fn new(n_aus: usize) -> PeerTable {
        PeerTable::with_capacity(0, n_aus)
    }

    /// An empty table pre-sized for `peers` peers — one allocation per
    /// column instead of a doubling cascade when building 10k+ worlds.
    pub fn with_capacity(peers: usize, n_aus: usize) -> PeerTable {
        PeerTable {
            n_aus,
            node: Vec::with_capacity(peers),
            identity: Vec::with_capacity(peers),
            schedule: Vec::with_capacity(peers),
            ledger: Vec::with_capacity(peers),
            voting: Vec::with_capacity(peers),
            rng: Vec::with_capacity(peers),
            compromised: Vec::with_capacity(peers),
            au: Vec::with_capacity(peers * n_aus),
        }
    }

    /// Appends a peer row; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `per_au` does not hold exactly `n_aus` cells.
    pub fn push(
        &mut self,
        node: NodeId,
        identity: Identity,
        per_au: Vec<AuState>,
        rng: SimRng,
    ) -> usize {
        assert_eq!(per_au.len(), self.n_aus, "per-AU cells must match n_aus");
        let index = self.node.len();
        self.node.push(node);
        self.identity.push(identity);
        self.schedule.push(TaskSchedule::new());
        self.ledger.push(EffortLedger::new());
        self.voting.push(BTreeMap::new());
        self.rng.push(rng);
        self.compromised.push(false);
        self.au.extend(per_au);
        index
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True if the table holds no peers.
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// AUs per peer.
    pub fn n_aus(&self) -> usize {
        self.n_aus
    }

    #[inline]
    fn cell(&self, p: usize, au: usize) -> usize {
        debug_assert!(au < self.n_aus, "AU index {au} out of range");
        p * self.n_aus + au
    }

    /// The peer's network node.
    #[inline]
    pub fn node(&self, p: usize) -> NodeId {
        self.node[p]
    }

    /// The peer's protocol identity.
    #[inline]
    pub fn identity(&self, p: usize) -> Identity {
        self.identity[p]
    }

    /// All identities, by peer index.
    pub fn identities(&self) -> &[Identity] {
        &self.identity
    }

    /// The peer's state for one AU.
    #[inline]
    pub fn au(&self, p: usize, au: usize) -> &AuState {
        &self.au[self.cell(p, au)]
    }

    /// Mutable per-AU state.
    #[inline]
    pub fn au_mut(&mut self, p: usize, au: usize) -> &mut AuState {
        let i = self.cell(p, au);
        &mut self.au[i]
    }

    /// All of one peer's per-AU cells.
    pub fn aus(&self, p: usize) -> &[AuState] {
        &self.au[p * self.n_aus..(p + 1) * self.n_aus]
    }

    /// All of one peer's per-AU cells, mutably.
    pub fn aus_mut(&mut self, p: usize) -> &mut [AuState] {
        let (lo, hi) = (p * self.n_aus, (p + 1) * self.n_aus);
        &mut self.au[lo..hi]
    }

    /// One AU cell and the peer's RNG, borrowed together — the poll path's
    /// recurring pattern (sample from the reference list with the peer's
    /// own stream), a plain disjoint-column borrow here.
    #[inline]
    pub fn au_and_rng_mut(&mut self, p: usize, au: usize) -> (&mut AuState, &mut SimRng) {
        let i = self.cell(p, au);
        (&mut self.au[i], &mut self.rng[p])
    }

    /// The peer's CPU commitment calendar.
    pub fn schedule(&self, p: usize) -> &TaskSchedule {
        &self.schedule[p]
    }

    /// Mutable CPU calendar.
    pub fn schedule_mut(&mut self, p: usize) -> &mut TaskSchedule {
        &mut self.schedule[p]
    }

    /// All CPU calendars, by peer index.
    pub fn schedules(&self) -> &[TaskSchedule] {
        &self.schedule
    }

    /// The peer's effort ledger.
    pub fn ledger(&self, p: usize) -> &EffortLedger {
        &self.ledger[p]
    }

    /// Mutable effort ledger.
    pub fn ledger_mut(&mut self, p: usize) -> &mut EffortLedger {
        &mut self.ledger[p]
    }

    /// All effort ledgers, by peer index.
    pub fn ledgers(&self) -> &[EffortLedger] {
        &self.ledger
    }

    /// The peer's open voter commitments.
    pub fn voting(&self, p: usize) -> &BTreeMap<VoterKey, VoterSession> {
        &self.voting[p]
    }

    /// Mutable voter commitments.
    pub fn voting_mut(&mut self, p: usize) -> &mut BTreeMap<VoterKey, VoterSession> {
        &mut self.voting[p]
    }

    /// The peer's private randomness stream.
    pub fn rng_mut(&mut self, p: usize) -> &mut SimRng {
        &mut self.rng[p]
    }

    /// True while the mobile adversary occupies this peer.
    #[inline]
    pub fn is_compromised(&self, p: usize) -> bool {
        self.compromised[p]
    }

    /// Flips the compromise flag; the world's transition methods own the
    /// shadow-replica and metrics bookkeeping around this.
    pub(crate) fn set_compromised(&mut self, p: usize, value: bool) {
        self.compromised[p] = value;
    }

    /// Peers currently compromised.
    pub fn compromised_count(&self) -> usize {
        self.compromised.iter().filter(|c| **c).count()
    }

    /// Number of this peer's replicas currently damaged.
    pub fn damaged_replicas(&self, p: usize) -> usize {
        self.aus(p)
            .iter()
            .filter(|a| !a.replica.is_intact())
            .count()
    }

    /// Damaged replicas across the whole population.
    pub fn total_damaged(&self) -> usize {
        self.au.iter().filter(|a| !a.replica.is_intact()).count()
    }

    /// Current heap occupancy, for memory reports.
    pub fn occupancy(&self) -> TableOccupancy {
        let mut occ = TableOccupancy {
            peers: self.len(),
            aus_per_peer: self.n_aus,
            ..TableOccupancy::default()
        };
        for cell in &self.au {
            occ.known_entries += cell.known.len();
            occ.reflist_entries += cell.reflist.len();
            occ.live_polls += usize::from(cell.poll.is_some());
        }
        occ.voter_sessions = self.voting.iter().map(BTreeMap::len).sum();
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_storage::AuId;

    fn table_with_two_aus() -> PeerTable {
        let mut t = PeerTable::new(2);
        for i in 0..3u32 {
            let per_au = vec![
                AuState::new(RefList::new(vec![], vec![])),
                AuState::new(RefList::new(vec![], vec![])),
            ];
            let p = t.push(
                NodeId(i),
                Identity::loyal(i),
                per_au,
                SimRng::seed_from_u64(i as u64),
            );
            assert_eq!(p, i as usize);
        }
        t
    }

    #[test]
    fn accessors_and_damage_counts() {
        let mut t = table_with_two_aus();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.n_aus(), 2);
        assert_eq!(t.node(1), NodeId(1));
        assert_eq!(t.identity(2), Identity::loyal(2));
        assert_eq!(t.damaged_replicas(1), 0);
        t.au_mut(1, AuId(1).index()).replica.damage(3);
        assert_eq!(t.damaged_replicas(1), 1);
        assert_eq!(t.damaged_replicas(0), 0);
        assert_eq!(t.total_damaged(), 1);
        assert!(!t.au(1, 1).replica.is_intact());
        assert!(t.au(1, 0).replica.is_intact());
        assert_eq!(t.aus(1).len(), 2);
    }

    #[test]
    fn au_cells_are_flattened_per_peer() {
        let mut t = table_with_two_aus();
        t.au_mut(0, 1).replica.damage(1);
        t.au_mut(2, 0).replica.damage(2);
        // Damaging one peer's cell never leaks into a neighbour's slice.
        assert!(t.aus(1).iter().all(|a| a.replica.is_intact()));
        assert_eq!(t.total_damaged(), 2);
    }

    #[test]
    fn split_borrow_of_au_and_rng() {
        let mut t = table_with_two_aus();
        let (au_state, rng) = t.au_and_rng_mut(1, 0);
        // Both halves usable simultaneously: sample from the cell's
        // reference list with the peer's own stream.
        let picks = au_state.reflist.sample(2, rng);
        assert!(picks.is_empty(), "empty reflist samples nothing");
    }

    #[test]
    fn occupancy_reflects_state() {
        let mut t = table_with_two_aus();
        assert_eq!(t.occupancy().peers, 3);
        assert_eq!(t.occupancy().live_polls, 0);
        t.au_mut(0, 0)
            .reflist
            .insert(Identity::loyal(9), usize::MAX);
        let occ = t.occupancy();
        assert_eq!(occ.reflist_entries, 1);
        assert_eq!(occ.aus_per_peer, 2);
        assert_eq!(occ.known_entries, 0);
    }

    #[test]
    fn compromise_flag_starts_false_and_flips() {
        let mut t = table_with_two_aus();
        assert_eq!(t.compromised_count(), 0);
        assert!(!t.is_compromised(1));
        t.set_compromised(1, true);
        assert!(t.is_compromised(1));
        assert_eq!(t.compromised_count(), 1);
        t.set_compromised(1, false);
        assert_eq!(t.compromised_count(), 0);
        // Shadow replicas start absent on every cell.
        assert!(t.aus(0).iter().all(|a| a.shadow.is_none()));
    }

    #[test]
    #[should_panic(expected = "per-AU cells must match")]
    fn mismatched_au_count_panics() {
        let mut t = PeerTable::new(2);
        t.push(
            NodeId(0),
            Identity::loyal(0),
            vec![AuState::new(RefList::new(vec![], vec![]))],
            SimRng::seed_from_u64(0),
        );
    }
}

//! A loyal peer: per-AU protocol state plus shared CPU schedule and effort
//! ledger.

use std::collections::BTreeMap;

use lockss_effort::EffortLedger;
use lockss_net::NodeId;
use lockss_sim::SimRng;
use lockss_storage::{AuId, Replica};

use crate::admission::AdmissionControl;
use crate::poller::PollState;
use crate::reflist::RefList;
use crate::reputation::KnownPeers;
use crate::schedule::TaskSchedule;
use crate::types::Identity;
use crate::voter::{VoterKey, VoterSession};

/// Per-AU state of one peer.
#[derive(Clone, Debug)]
pub struct AuState {
    pub replica: Replica,
    pub known: KnownPeers,
    pub admission: AdmissionControl,
    pub reflist: RefList,
    /// The in-flight poll this peer is running on this AU, if any.
    pub poll: Option<PollState>,
}

impl AuState {
    /// Fresh per-AU state with the given reference list.
    pub fn new(reflist: RefList) -> AuState {
        AuState {
            replica: Replica::pristine(),
            known: KnownPeers::new(),
            admission: AdmissionControl::new(),
            reflist,
            poll: None,
        }
    }
}

/// One loyal peer.
pub struct Peer {
    pub node: NodeId,
    pub identity: Identity,
    /// Single-CPU commitment calendar (shared across all AUs — the §6.3
    /// resource contention between concurrently preserved AUs).
    pub schedule: TaskSchedule,
    pub ledger: EffortLedger,
    pub per_au: Vec<AuState>,
    /// Active voter commitments, keyed by poll.
    pub voting: BTreeMap<VoterKey, VoterSession>,
    /// The peer's private randomness stream.
    pub rng: SimRng,
}

impl Peer {
    /// Builds a peer with `n_aus` pristine replicas.
    pub fn new(node: NodeId, identity: Identity, per_au: Vec<AuState>, rng: SimRng) -> Peer {
        Peer {
            node,
            identity,
            schedule: TaskSchedule::new(),
            ledger: EffortLedger::new(),
            per_au,
            voting: BTreeMap::new(),
            rng,
        }
    }

    /// This peer's state for `au`.
    pub fn au(&self, au: AuId) -> &AuState {
        &self.per_au[au.index()]
    }

    /// Mutable state for `au`.
    pub fn au_mut(&mut self, au: AuId) -> &mut AuState {
        &mut self.per_au[au.index()]
    }

    /// Number of replicas currently damaged at this peer.
    pub fn damaged_replicas(&self) -> usize {
        self.per_au
            .iter()
            .filter(|a| !a.replica.is_intact())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_accessors() {
        let rng = SimRng::seed_from_u64(1);
        let per_au = vec![
            AuState::new(RefList::new(vec![], vec![])),
            AuState::new(RefList::new(vec![], vec![])),
        ];
        let mut p = Peer::new(NodeId(0), Identity::loyal(0), per_au, rng);
        assert_eq!(p.damaged_replicas(), 0);
        p.au_mut(AuId(1)).replica.damage(3);
        assert_eq!(p.damaged_replicas(), 1);
        assert!(!p.au(AuId(1)).replica.is_intact());
        assert!(p.au(AuId(0)).replica.is_intact());
    }
}

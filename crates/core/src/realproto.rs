//! The real-cryptography protocol datapath ("real mode").
//!
//! The simulation models effort and hashing as time costs, exactly like
//! the paper's Narses experiments. This module is the other half: a
//! complete, synchronous implementation of one §4 poll using the *actual*
//! substrates — SHA-256 running-hash votes keyed by a fresh nonce,
//! memory-bound effort proofs with their 160-bit byproducts, the byproduct
//! reused as the unforgeable evaluation receipt, authenticated sessions,
//! block repairs re-verified against the vote hashes.
//!
//! It exists to demonstrate (and regression-test) that every object the
//! simulator charges time for is implementable as specified; examples and
//! the micro-benchmarks drive it.

use lockss_crypto::mbf::{MbfParams, MbfProof, MbfPuzzle};
use lockss_crypto::sha256::Digest;
use lockss_net::session::Session;
use lockss_storage::au::{AuId, AuSpec, Replica};
use lockss_storage::content::{canonical_block, running_hashes_into};

use crate::types::Identity;

/// Per-poll cache of one endpoint's own running-hash vector.
///
/// The nonce and the local replica are fixed for the lifetime of a poll, so
/// the §4.1 hash vector is a poll-level invariant: computing it per *vote*
/// (as the naive datapath did) multiplies the dominant
/// O(blocks × block-bytes) hashing cost by the number of voters for no
/// informational gain. The cache holds one vector, keyed by the nonce plus
/// a snapshot of the replica's damage set; [`RealPoller::apply_repair`]
/// invalidates it eagerly, and the damage-snapshot key catches direct
/// `replica` mutations (the field is public) so a stale vector can never be
/// served. Hash values are byte-identical to the uncached computation.
#[derive(Default)]
struct PollHashCache {
    valid: bool,
    nonce: Vec<u8>,
    /// Damage snapshot the vector was computed under.
    damage: Vec<u64>,
    hashes: Vec<Digest>,
    /// Block-content scratch reused across refills.
    scratch: Vec<u8>,
}

impl PollHashCache {
    /// True if the cached vector is current for `(nonce, replica)`.
    fn fresh(&self, nonce: &[u8], replica: &Replica) -> bool {
        self.valid
            && self.nonce == nonce
            && replica.damaged_count() == self.damage.len()
            && replica.damaged_blocks().eq(self.damage.iter().copied())
    }

    /// Returns the hash vector for `(nonce, replica)`, recomputing only
    /// when stale.
    #[allow(clippy::too_many_arguments)]
    fn get(
        &mut self,
        seed: u64,
        au: AuId,
        spec: &AuSpec,
        replica: &Replica,
        salt: u64,
        nonce: &[u8],
    ) -> &[Digest] {
        if !self.fresh(nonce, replica) {
            running_hashes_into(
                seed,
                au,
                spec,
                replica,
                salt,
                nonce,
                &mut self.scratch,
                &mut self.hashes,
            );
            self.nonce.clear();
            self.nonce.extend_from_slice(nonce);
            self.damage.clear();
            self.damage.extend(replica.damaged_blocks());
            self.valid = true;
        }
        &self.hashes
    }

    fn invalidate(&mut self) {
        self.valid = false;
    }
}

/// Shared real-mode parameters (in deployment these are protocol
/// constants; the MBF table seed is public).
#[derive(Clone, Debug)]
pub struct RealParams {
    pub au: AuId,
    pub spec: AuSpec,
    /// Publisher content seed (what "the correct AU" means).
    pub content_seed: u64,
    /// MBF tuning for the introductory + remaining effort.
    pub intro_mbf: MbfParams,
    /// MBF tuning for the vote's embedded effort.
    pub vote_mbf: MbfParams,
    /// Public seed of the MBF table.
    pub mbf_table_seed: u64,
}

impl RealParams {
    /// Small parameters suitable for tests and examples.
    pub fn small() -> RealParams {
        RealParams {
            au: AuId(0),
            spec: AuSpec {
                size_bytes: 32 * 1024,
                block_bytes: 4 * 1024,
            },
            content_seed: 0x0010_C355,
            intro_mbf: MbfParams {
                table_bits: 12,
                walk_len: 128,
                n_walks: 4,
                difficulty_bits: 2,
            },
            vote_mbf: MbfParams {
                table_bits: 12,
                walk_len: 64,
                n_walks: 2,
                difficulty_bits: 1,
            },
            mbf_table_seed: 0x7AB1E,
        }
    }
}

/// Why a real-mode exchange was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RealError {
    /// The poller's effort proof failed verification.
    BadIntroEffort,
    /// The vote's embedded effort proof failed verification.
    BadVoteEffort,
    /// A sealed message failed authentication.
    BadChannel,
    /// The evaluation receipt did not match the remembered byproduct.
    BadReceipt,
    /// A repair block did not re-verify against the majority hashes.
    BadRepair,
}

/// A real-mode vote: the §4.1 running hashes plus the embedded effort.
#[derive(Clone, Debug)]
pub struct RealVote {
    pub voter: Identity,
    pub hashes: Vec<Digest>,
    pub effort: MbfProof,
}

/// Voter-side endpoint.
pub struct RealVoter {
    pub identity: Identity,
    pub replica: Replica,
    /// Distinguishes this peer's damaged-garbage from others'.
    pub salt: u64,
    params: RealParams,
    puzzle: MbfPuzzle,
    /// The vote-effort puzzle, built once: the MBF table is a function of
    /// the public `(params, table seed)` only, never of the challenge.
    vote_puzzle: MbfPuzzle,
    /// Block-content scratch reused across solicitations.
    scratch: Vec<u8>,
    /// Remembered byproduct of the vote effort, awaiting the receipt.
    expected_receipt: Option<[u8; 20]>,
}

impl RealVoter {
    /// Creates a voter with a pristine replica.
    pub fn new(identity: Identity, salt: u64, params: &RealParams) -> RealVoter {
        RealVoter {
            identity,
            replica: Replica::pristine(),
            salt,
            params: params.clone(),
            puzzle: MbfPuzzle::new(params.intro_mbf, params.mbf_table_seed),
            vote_puzzle: MbfPuzzle::new(params.vote_mbf, params.mbf_table_seed),
            scratch: Vec::new(),
            expected_receipt: None,
        }
    }

    /// Handles a solicitation: verifies the poller's effort, computes the
    /// nonce-keyed running-hash vote with its embedded effort proof, and
    /// remembers the byproduct as the expected receipt (§5.1).
    pub fn solicit(
        &mut self,
        poll_challenge: &[u8],
        intro: &MbfProof,
        nonce: &[u8],
    ) -> Result<RealVote, RealError> {
        self.puzzle
            .verify(poll_challenge, intro)
            .ok_or(RealError::BadIntroEffort)?;
        let mut hashes = Vec::new();
        running_hashes_into(
            self.params.content_seed,
            self.params.au,
            &self.params.spec,
            &self.replica,
            self.salt,
            nonce,
            &mut self.scratch,
            &mut hashes,
        );
        let mut challenge = Vec::from(nonce);
        challenge.extend_from_slice(&self.identity.0.to_le_bytes());
        let effort = self.vote_puzzle.prove(&challenge);
        self.expected_receipt = Some(effort.byproduct);
        Ok(RealVote {
            voter: self.identity,
            hashes,
            effort,
        })
    }

    /// Serves a repair block (§4.3). A loyal voter only serves blocks its
    /// replica holds intact.
    pub fn serve_repair(&self, block: u64) -> Option<Vec<u8>> {
        if self.replica.is_damaged(block) {
            return None;
        }
        Some(canonical_block(
            self.params.content_seed,
            self.params.au,
            block,
            &self.params.spec,
        ))
    }

    /// Checks the evaluation receipt against the remembered byproduct.
    pub fn accept_receipt(&mut self, receipt: &[u8; 20]) -> Result<(), RealError> {
        match self.expected_receipt.take() {
            Some(expected) if expected == *receipt => Ok(()),
            _ => Err(RealError::BadReceipt),
        }
    }
}

/// Result of evaluating one vote against the poller's replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// First block at which the vote diverges from the poller, if any.
    pub first_disagreement: Option<u64>,
    /// The receipt to return (byproduct of verifying the vote's effort).
    pub receipt: [u8; 20],
}

/// Poller-side endpoint.
pub struct RealPoller {
    pub identity: Identity,
    pub replica: Replica,
    pub salt: u64,
    params: RealParams,
    puzzle: MbfPuzzle,
    /// The vote-effort puzzle, built once (the MBF table depends only on
    /// the public `(params, table seed)`, never on the challenge).
    vote_puzzle: MbfPuzzle,
    /// This poll's own hash vector, computed once and shared by every
    /// vote evaluation.
    hash_cache: PollHashCache,
}

impl RealPoller {
    /// Creates a poller with a pristine replica.
    pub fn new(identity: Identity, salt: u64, params: &RealParams) -> RealPoller {
        RealPoller {
            identity,
            replica: Replica::pristine(),
            salt,
            params: params.clone(),
            puzzle: MbfPuzzle::new(params.intro_mbf, params.mbf_table_seed),
            vote_puzzle: MbfPuzzle::new(params.vote_mbf, params.mbf_table_seed),
            hash_cache: PollHashCache::default(),
        }
    }

    /// Produces the poll challenge for a voter and performs the effort.
    pub fn solicit_effort(&self, poll_nonce: &[u8], voter: Identity) -> (Vec<u8>, MbfProof) {
        let mut challenge = b"lockss-poll".to_vec();
        challenge.extend_from_slice(poll_nonce);
        challenge.extend_from_slice(&voter.0.to_le_bytes());
        let proof = self.puzzle.prove(&challenge);
        (challenge, proof)
    }

    /// Evaluates a vote block by block (§4.3): verifies the embedded
    /// effort (obtaining the receipt byproduct) and finds the first
    /// disagreeing block, if any.
    ///
    /// The poller's own hash vector is a per-poll invariant (the nonce and
    /// the replica are fixed until a repair lands), so it is computed once
    /// in the poll hash cache and shared by every vote of the poll.
    pub fn evaluate(&mut self, nonce: &[u8], vote: &RealVote) -> Result<Evaluation, RealError> {
        let mut challenge = Vec::from(nonce);
        challenge.extend_from_slice(&vote.voter.0.to_le_bytes());
        let receipt = self
            .vote_puzzle
            .verify(&challenge, &vote.effort)
            .ok_or(RealError::BadVoteEffort)?;
        let mine = self.hash_cache.get(
            self.params.content_seed,
            self.params.au,
            &self.params.spec,
            &self.replica,
            self.salt,
            nonce,
        );
        let first_disagreement = mine
            .iter()
            .zip(vote.hashes.iter())
            .position(|(a, b)| a != b)
            .map(|i| i as u64);
        Ok(Evaluation {
            first_disagreement,
            receipt,
        })
    }

    /// Applies a repair block after re-verifying it against the canonical
    /// content hashing (§4.3: the poller re-evaluates the block, hoping to
    /// join the landslide majority). Mutating the replica invalidates the
    /// poll hash cache; the next evaluation recomputes the vector.
    pub fn apply_repair(&mut self, block: u64, content: &[u8]) -> Result<(), RealError> {
        let canonical = canonical_block(
            self.params.content_seed,
            self.params.au,
            block,
            &self.params.spec,
        );
        if content != canonical.as_slice() {
            return Err(RealError::BadRepair);
        }
        self.replica.repair(block);
        self.hash_cache.invalidate();
        Ok(())
    }
}

/// Runs one complete real-mode two-party exchange over an authenticated
/// channel: solicitation, vote, evaluation, repair (if the poller is
/// damaged), receipt. Returns the number of blocks repaired.
///
/// This is the integration path examples and benches drive; the
/// discrete-event simulator replaces all of its compute with calibrated
/// time costs.
pub fn run_real_exchange(
    poller: &mut RealPoller,
    voter: &mut RealVoter,
    poll_nonce: &[u8],
) -> Result<u32, RealError> {
    // Authenticated session (stands in for TLS over anonymous DH).
    let (mut pc, mut vc) = Session::pair(0x005E_5510);

    // Solicitation with provable effort.
    let (challenge, intro) = poller.solicit_effort(poll_nonce, voter.identity);
    let sealed = pc.seal(&challenge);
    if !vc.open(&challenge, &sealed) {
        return Err(RealError::BadChannel);
    }
    let vote = voter.solicit(&challenge, &intro, poll_nonce)?;

    // Evaluation; repair every disagreeing block sourced from the voter.
    let mut repaired = 0;
    loop {
        let eval = poller.evaluate(poll_nonce, &vote)?;
        let Some(block) = eval.first_disagreement else {
            // Agreement: ship the receipt and finish.
            voter.accept_receipt(&eval.receipt)?;
            return Ok(repaired);
        };
        // Try to repair from the voter. If the voter's own replica is
        // damaged at this block the disagreement is *theirs*; a two-party
        // exchange cannot fix it (the full protocol uses the landslide
        // majority), so conclude with the receipt.
        match voter.serve_repair(block) {
            Some(content) => {
                poller.apply_repair(block, &content)?;
                repaired += 1;
            }
            None => {
                voter.accept_receipt(&eval.receipt)?;
                return Ok(repaired);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_storage::content::running_hashes;

    fn pair() -> (RealPoller, RealVoter, RealParams) {
        let params = RealParams::small();
        let poller = RealPoller::new(Identity::loyal(0), 1, &params);
        let voter = RealVoter::new(Identity::loyal(1), 2, &params);
        (poller, voter, params)
    }

    #[test]
    fn intact_exchange_agrees_and_receipts() {
        let (mut poller, mut voter, _) = pair();
        let repaired = run_real_exchange(&mut poller, &mut voter, b"nonce-1").expect("exchange");
        assert_eq!(repaired, 0);
    }

    #[test]
    fn damaged_poller_gets_repaired() {
        let (mut poller, mut voter, _) = pair();
        poller.replica.damage(3);
        poller.replica.damage(6);
        let repaired = run_real_exchange(&mut poller, &mut voter, b"nonce-2").expect("exchange");
        assert_eq!(repaired, 2);
        assert!(poller.replica.is_intact());
    }

    #[test]
    fn damaged_voter_cannot_serve_and_poll_concludes() {
        let (mut poller, mut voter, _) = pair();
        voter.replica.damage(5);
        let repaired = run_real_exchange(&mut poller, &mut voter, b"nonce-3").expect("exchange");
        assert_eq!(repaired, 0, "the disagreement was the voter's damage");
        assert!(poller.replica.is_intact());
    }

    #[test]
    fn bad_intro_effort_rejected() {
        let (poller, mut voter, params) = pair();
        let (challenge, mut intro) = poller.solicit_effort(b"n", voter.identity);
        intro.walks[0].end ^= 1;
        let err = voter.solicit(&challenge, &intro, b"n").unwrap_err();
        assert_eq!(err, RealError::BadIntroEffort);
        let _ = params;
    }

    #[test]
    fn bad_vote_effort_rejected() {
        let (mut poller, mut voter, _) = pair();
        let (challenge, intro) = poller.solicit_effort(b"n", voter.identity);
        let mut vote = voter.solicit(&challenge, &intro, b"n").expect("vote");
        vote.effort.byproduct[0] ^= 1;
        let err = poller.evaluate(b"n", &vote).unwrap_err();
        assert_eq!(err, RealError::BadVoteEffort);
        let _ = poller.replica.is_intact();
    }

    #[test]
    fn forged_receipt_rejected() {
        let (poller, mut voter, _) = pair();
        let (challenge, intro) = poller.solicit_effort(b"n", voter.identity);
        let _ = voter.solicit(&challenge, &intro, b"n").expect("vote");
        let forged = [0u8; 20];
        assert_eq!(voter.accept_receipt(&forged), Err(RealError::BadReceipt));
    }

    #[test]
    fn receipt_matches_only_after_evaluation() {
        let (mut poller, mut voter, _) = pair();
        let (challenge, intro) = poller.solicit_effort(b"n", voter.identity);
        let vote = voter.solicit(&challenge, &intro, b"n").expect("vote");
        let eval = poller.evaluate(b"n", &vote).expect("evaluation");
        assert!(voter.accept_receipt(&eval.receipt).is_ok());
        // A second acceptance must fail: the receipt is one-shot.
        assert_eq!(
            voter.accept_receipt(&eval.receipt),
            Err(RealError::BadReceipt)
        );
    }

    #[test]
    fn corrupt_repair_rejected() {
        let (mut poller, _, _) = pair();
        poller.replica.damage(1);
        let garbage = vec![0u8; 4 * 1024];
        assert_eq!(poller.apply_repair(1, &garbage), Err(RealError::BadRepair));
        assert!(!poller.replica.is_intact());
    }

    /// Seeded sweep: under random interleavings of damage, repair, nonce
    /// changes, and direct `replica` mutation (bypassing `apply_repair`),
    /// the cached evaluation hash vector always equals a from-scratch
    /// [`running_hashes`] of the poller's current replica.
    #[test]
    fn cached_hashes_match_uncached_across_damage_repair_sequences() {
        use lockss_sim::SimRng;
        let params = RealParams::small();
        let mut rng = SimRng::seed_from_u64(0x0CAC_4E01);
        let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
        let mut voter = RealVoter::new(Identity::loyal(1), 2, &params);
        let blocks = params.spec.blocks() as usize;
        let mut nonce_i = 0u64;
        for step in 0..64 {
            // Random mutation of the poller's replica between evaluations.
            match rng.below(4) {
                0 => {
                    let _ = poller.replica.damage(rng.below(blocks) as u64);
                }
                1 => {
                    // A legitimate repair through apply_repair.
                    let first = poller.replica.damaged_blocks().next();
                    if let Some(b) = first {
                        let content =
                            canonical_block(params.content_seed, params.au, b, &params.spec);
                        poller.apply_repair(b, &content).expect("canonical repair");
                    }
                }
                2 => {
                    // Direct mutation bypassing the invalidation hook: the
                    // snapshot key must still catch it.
                    let _ = poller.replica.repair(rng.below(blocks) as u64);
                }
                _ => nonce_i += 1, // fresh poll nonce
            }
            let nonce = nonce_i.to_le_bytes();
            let (challenge, intro) = poller.solicit_effort(&nonce, voter.identity);
            let vote = voter.solicit(&challenge, &intro, &nonce).expect("vote");
            let eval = poller.evaluate(&nonce, &vote).expect("evaluation");
            let uncached_mine = running_hashes(
                params.content_seed,
                params.au,
                &params.spec,
                &poller.replica,
                poller.salt,
                &nonce,
            );
            assert_eq!(
                poller.hash_cache.hashes, uncached_mine,
                "step {step}: cache must track the replica exactly"
            );
            let expect_first = uncached_mine
                .iter()
                .zip(vote.hashes.iter())
                .position(|(a, b)| a != b)
                .map(|i| i as u64);
            assert_eq!(eval.first_disagreement, expect_first, "step {step}");
            voter.accept_receipt(&eval.receipt).expect("receipt");
        }
    }

    #[test]
    fn nonce_freshness_changes_votes() {
        let (_, mut voter, params) = pair();
        let poller = RealPoller::new(Identity::loyal(9), 3, &params);
        let (c1, i1) = poller.solicit_effort(b"nonce-a", voter.identity);
        let v1 = voter.solicit(&c1, &i1, b"nonce-a").expect("vote 1");
        let (c2, i2) = poller.solicit_effort(b"nonce-b", voter.identity);
        let v2 = voter.solicit(&c2, &i2, b"nonce-b").expect("vote 2");
        assert_ne!(v1.hashes, v2.hashes, "votes must be nonce-keyed");
    }
}

//! Pre-registered metric handles for the protocol layer (see `lockss-obs`).
//!
//! The same discipline as [`crate::trace::TraceSink`]: the world holds
//! `Option<Box<CoreObs>>`, each instrumented site pays one null check
//! when observability is off, and everything recorded here is strictly
//! out-of-band — counters never feed back into protocol decisions, so a
//! run's results are byte-identical with or without them.

use lockss_obs::{Counter, Histogram, RegistryBuilder};

/// Counter and histogram handles for the poll lifecycle, admission
/// (suppression) verdicts, and repair traffic.
#[derive(Clone)]
pub struct CoreObs {
    /// Polls opened by pollers.
    pub polls_started: Counter,
    /// Polls concluded with a landslide win.
    pub polls_win: Counter,
    /// Polls concluded with a landslide loss.
    pub polls_loss: Counter,
    /// Quorate polls with a non-landslide split.
    pub polls_inconclusive: Counter,
    /// Polls that never reached quorum.
    pub polls_inquorate: Counter,
    /// Votes received per concluded poll.
    pub poll_votes: Histogram,
    /// Protocol messages handed to the network.
    pub msgs_sent: Counter,
    /// Messages suppressed at the source (pipe stoppage).
    pub msgs_suppressed: Counter,
    /// Invitations admitted the ordinary way.
    pub admission_admitted: Counter,
    /// Invitations admitted via a valid introduction.
    pub admission_introduced: Counter,
    /// Invitations dropped by the random-drop defense.
    pub admission_random_drop: Counter,
    /// Invitations refused by the per-AU refractory period.
    pub admission_refractory: Counter,
    /// Invitations refused by the per-peer rate limit.
    pub admission_rate_limited: Counter,
    /// Repair blocks requested by outvoted pollers.
    pub repairs_requested: Counter,
    /// Repair blocks received and applied by pollers.
    pub repairs_applied: Counter,
    /// Storage bit-rot damage events.
    pub damage_events: Counter,
    /// Loyal peers that joined after the start (churn).
    pub peer_joins: Counter,
    /// Provenance-tagged adversary decision points.
    pub adversary_actions: Counter,
    /// Loyal peers taken over by the mobile adversary.
    pub compromises: Counter,
    /// Compromised peers restored to loyal behavior (replica still damaged).
    pub cures: Counter,
    /// Repair blocks applied from compromised servers (no heal: the block
    /// stays or becomes damaged).
    pub poisoned_repairs: Counter,
}

impl CoreObs {
    /// Registers the protocol metrics on `b` and returns the handles.
    pub fn register(b: &mut RegistryBuilder) -> CoreObs {
        CoreObs {
            polls_started: b.counter("polls_started_total", "Polls opened by pollers"),
            polls_win: b.counter("polls_win_total", "Polls concluded with a landslide win"),
            polls_loss: b.counter("polls_loss_total", "Polls concluded with a landslide loss"),
            polls_inconclusive: b.counter(
                "polls_inconclusive_total",
                "Quorate polls with a non-landslide split",
            ),
            polls_inquorate: b.counter("polls_inquorate_total", "Polls that never reached quorum"),
            poll_votes: b.histogram(
                "poll_votes",
                "Votes received per concluded poll",
                &[1, 2, 4, 8, 16, 32],
            ),
            msgs_sent: b.counter("msgs_sent_total", "Protocol messages handed to the network"),
            msgs_suppressed: b.counter(
                "msgs_suppressed_total",
                "Messages suppressed at the source by pipe stoppage",
            ),
            admission_admitted: b.counter(
                "admission_admitted_total",
                "Invitations admitted the ordinary way",
            ),
            admission_introduced: b.counter(
                "admission_introduced_total",
                "Invitations admitted via a valid introduction",
            ),
            admission_random_drop: b.counter(
                "admission_random_drop_total",
                "Invitations dropped by the random-drop defense",
            ),
            admission_refractory: b.counter(
                "admission_refractory_total",
                "Invitations refused by the per-AU refractory period",
            ),
            admission_rate_limited: b.counter(
                "admission_rate_limited_total",
                "Invitations refused by the per-peer rate limit",
            ),
            repairs_requested: b.counter(
                "repairs_requested_total",
                "Repair blocks requested by outvoted pollers",
            ),
            repairs_applied: b.counter(
                "repairs_applied_total",
                "Repair blocks received and applied by pollers",
            ),
            damage_events: b.counter("damage_events_total", "Storage bit-rot damage events"),
            peer_joins: b.counter(
                "peer_joins_total",
                "Loyal peers that joined after the start",
            ),
            adversary_actions: b.counter(
                "adversary_actions_total",
                "Provenance-tagged adversary decision points",
            ),
            compromises: b.counter(
                "peer_compromises_total",
                "Loyal peers taken over by the mobile adversary",
            ),
            cures: b.counter(
                "peer_cures_total",
                "Compromised peers restored to loyal behavior",
            ),
            poisoned_repairs: b.counter(
                "poisoned_repairs_total",
                "Repair blocks applied from compromised servers",
            ),
        }
    }
}

//! Voter-side session state (§4.1, §5.1).
//!
//! After admitting an invitation, the voter commits: it reserves schedule
//! time for the vote computation (released if the poller deserts before
//! sending the PollProof), computes and ships the vote, serves a bounded
//! number of repairs, and finally expects a valid evaluation receipt — the
//! MBF byproduct — failing which the poller is penalized to debt.

use lockss_net::NodeId;
use lockss_sim::SimTime;
use lockss_storage::AuId;

use crate::schedule::Reservation;
use crate::types::{Identity, PollId};

/// Stage of a voter session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VoterStage {
    /// Committed (PollAck sent); awaiting the PollProof.
    AwaitingProof,
    /// PollProof received; the vote computation occupies the reservation.
    ComputingVote,
    /// Vote sent; awaiting the evaluation receipt.
    AwaitingReceipt,
    /// Exchange complete.
    Done,
}

/// One voter-side commitment to one poll.
#[derive(Clone, Debug)]
pub struct VoterSession {
    pub au: AuId,
    pub poller: Identity,
    /// Where replies go on the network.
    pub poller_node: NodeId,
    pub stage: VoterStage,
    /// The reserved CPU slot for the vote computation.
    pub reservation: Reservation,
    /// When the vote must be delivered by (from the Poll message).
    pub vote_deadline: SimTime,
    /// Repairs served so far in this poll (bounded, §4.3).
    pub repairs_served: u32,
    /// Whether the committed invitation was admitted via introduction
    /// (diagnostics).
    pub via_introduction: bool,
}

impl VoterSession {
    /// Creates a fresh committed session.
    pub fn new(
        au: AuId,
        poller: Identity,
        poller_node: NodeId,
        reservation: Reservation,
        vote_deadline: SimTime,
        via_introduction: bool,
    ) -> VoterSession {
        VoterSession {
            au,
            poller,
            poller_node,
            stage: VoterStage::AwaitingProof,
            reservation,
            vote_deadline,
            repairs_served: 0,
            via_introduction,
        }
    }

    /// True if this session may still serve a repair (§4.3: voters are
    /// expected to supply a small number of repairs once committed).
    pub fn may_serve_repair(&self, max_repairs: u32) -> bool {
        (self.stage == VoterStage::AwaitingReceipt || self.stage == VoterStage::Done)
            && self.repairs_served < max_repairs
    }
}

/// Key for a voter session: the poll it serves.
pub type VoterKey = PollId;

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_sim::Duration;

    fn session(stage: VoterStage, served: u32) -> VoterSession {
        let mut sched = crate::schedule::TaskSchedule::new();
        let reservation = sched.reserve(SimTime::ZERO, Duration::SECOND);
        let mut s = VoterSession::new(
            AuId(0),
            Identity(1),
            NodeId(1),
            reservation,
            SimTime::ZERO + Duration::DAY,
            false,
        );
        s.stage = stage;
        s.repairs_served = served;
        s
    }

    #[test]
    fn repair_service_requires_vote_sent_and_budget() {
        assert!(!session(VoterStage::AwaitingProof, 0).may_serve_repair(4));
        assert!(!session(VoterStage::ComputingVote, 0).may_serve_repair(4));
        assert!(session(VoterStage::AwaitingReceipt, 0).may_serve_repair(4));
        assert!(session(VoterStage::Done, 3).may_serve_repair(4));
        assert!(!session(VoterStage::AwaitingReceipt, 4).may_serve_repair(4));
    }
}

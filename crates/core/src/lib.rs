//! The LOCKSS replica audit-and-repair protocol with attrition defenses —
//! the paper's contribution (§4–§5).
//!
//! A population of peers each preserves replicas of archival units (AUs).
//! Every peer runs, per AU, an endless sequence of *opinion polls*: it
//! samples an inner circle from its reference list, solicits votes
//! individually at randomized times (desynchronization), evaluates the
//! votes block by block against its own replica, repairs blocks on which it
//! is outvoted in a landslide, and concludes with evaluation receipts —
//! then immediately schedules the next poll one inter-poll interval out
//! (autonomous rate limitation).
//!
//! The attrition defenses are:
//!
//! - **admission control** ([`admission`], [`reputation`]): random drops of
//!   unknown/in-debt pollers, a per-AU refractory period admitting at most
//!   one unknown/in-debt invitation, per-peer rate limits for known peers,
//!   and introductions that bypass both;
//! - **effort balancing** (costs from `lockss-effort`): provable effort at
//!   every protocol step so an ostensibly legitimate attacker always spends
//!   at least as much as his victim, with the MBF byproduct doubling as the
//!   evaluation receipt;
//! - **desynchronization** ([`poller`]): votes are solicited one voter at a
//!   time across a long solicitation window, so no simultaneous
//!   availability of a quorum is ever needed;
//! - **redundancy** ([`world`]): every peer holds a replica, polls sample
//!   from a reference list much larger than the quorum, and the inter-poll
//!   margin over the damage rate gives redundancy in time.
//!
//! [`world::World`] wires the peers to the simulated network, storage
//! damage process, effort ledgers, metrics, and a pluggable
//! [`adversary::Adversary`].

pub mod admission;
pub mod adversary;
pub mod churn;
pub mod config;
pub mod msg;
pub mod obs;
pub mod peer;
pub mod poller;
pub mod realproto;
pub mod reflist;
pub mod reputation;
pub mod schedule;
pub mod trace;
pub mod types;
pub mod voter;
pub mod world;

pub use adversary::{Adversary, NullAdversary};
pub use config::{ProtocolConfig, WorldConfig};
pub use msg::Message;
pub use obs::CoreObs;
pub use peer::{AuState, PeerTable, TableOccupancy};
pub use trace::{AdmissionVerdict, MsgKind, PollConclusion, TraceEvent, TraceEventKind, TraceSink};
pub use types::{Identity, PollId};
pub use world::{CompromiseStats, World};

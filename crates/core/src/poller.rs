//! Poller-side poll state (§4.1–§4.3).
//!
//! A poll proceeds through a *vote solicitation* phase — individual,
//! desynchronized invitations to the inner circle sampled from the
//! reference list, plus discovered outer-circle peers — and an *evaluation*
//! phase that tallies votes block by block, fetches repairs where the
//! poller is outvoted in a landslide, and concludes with receipts.

use lockss_sim::SimTime;
use lockss_storage::AuId;

use crate::types::{Identity, PollId};

/// Solicitation status of one invitee.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InviteeStatus {
    /// An invitation send is scheduled (attempt counter included).
    Scheduled { attempt: u32 },
    /// Poll sent; awaiting PollAck.
    Invited { attempt: u32 },
    /// PollAck(accept) received; PollProof being generated/sent.
    Accepted,
    /// PollProof sent; awaiting the Vote.
    AwaitingVote,
    /// Vote recorded.
    Voted,
    /// Refused or timed out; eligible for a retry.
    Refused { attempts: u32 },
    /// Gave up on this invitee for this poll.
    Dead,
}

/// One invited voter.
#[derive(Clone, Debug)]
pub struct Invitee {
    pub id: Identity,
    pub status: InviteeStatus,
    /// Inner-circle votes determine the outcome; outer-circle votes only
    /// demonstrate good behaviour (§4.2).
    pub inner: bool,
}

/// A recorded vote.
#[derive(Clone, Debug)]
pub struct RecordedVote {
    pub voter: Identity,
    /// The voter's damaged-block snapshot (sorted).
    pub damage: Vec<u64>,
    pub inner: bool,
}

/// Phase of a poll.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PollPhase {
    Soliciting,
    Evaluating,
    Repairing,
    Finished,
}

/// The poller's full state for one poll on one AU.
#[derive(Clone, Debug)]
pub struct PollState {
    pub id: PollId,
    pub au: AuId,
    pub started: SimTime,
    /// End of the solicitation window; evaluation begins here.
    pub solicit_deadline: SimTime,
    /// Hard conclusion time (the next poll starts on schedule regardless).
    pub conclude_at: SimTime,
    pub phase: PollPhase,
    pub invitees: Vec<Invitee>,
    pub votes: Vec<RecordedVote>,
    /// Outer-circle candidates accumulated from nominations (§4.2).
    pub nominated_pool: Vec<Identity>,
    pub outer_launched: bool,
    /// Repairs requested and not yet received.
    pub pending_repairs: u32,
    /// Repairs that could not be sourced from any voter.
    pub unrepairable: u32,
}

impl PollState {
    /// Creates a poll in the soliciting phase.
    pub fn new(
        id: PollId,
        au: AuId,
        started: SimTime,
        solicit_deadline: SimTime,
        conclude_at: SimTime,
    ) -> PollState {
        PollState {
            id,
            au,
            started,
            solicit_deadline,
            conclude_at,
            phase: PollPhase::Soliciting,
            invitees: Vec::new(),
            votes: Vec::new(),
            nominated_pool: Vec::new(),
            outer_launched: false,
            pending_repairs: 0,
            unrepairable: 0,
        }
    }

    /// Index of an invitee by identity.
    pub fn invitee_index(&self, id: Identity) -> Option<usize> {
        self.invitees.iter().position(|i| i.id == id)
    }

    /// True if `id` was already invited (any status).
    pub fn has_invitee(&self, id: Identity) -> bool {
        self.invitee_index(id).is_some()
    }

    /// Adds an invitee in `Scheduled` state; returns its index.
    pub fn add_invitee(&mut self, id: Identity, inner: bool) -> usize {
        self.invitees.push(Invitee {
            id,
            status: InviteeStatus::Scheduled { attempt: 0 },
            inner,
        });
        self.invitees.len() - 1
    }

    /// Records a vote for an invitee, marking it `Voted`.
    pub fn record_vote(&mut self, voter: Identity, damage: Vec<u64>) -> bool {
        let Some(idx) = self.invitee_index(voter) else {
            return false; // unsolicited votes are ignored (§5.1)
        };
        let inner = self.invitees[idx].inner;
        if self.invitees[idx].status == InviteeStatus::Voted {
            return false; // duplicate
        }
        self.invitees[idx].status = InviteeStatus::Voted;
        self.votes.push(RecordedVote {
            voter,
            damage,
            inner,
        });
        true
    }

    /// Number of inner-circle votes received.
    pub fn inner_votes(&self) -> usize {
        self.votes.iter().filter(|v| v.inner).count()
    }

    /// Identities of inner voters (the decisive voters removed from the
    /// reference list at conclusion).
    pub fn decisive_voters(&self) -> Vec<Identity> {
        self.votes
            .iter()
            .filter(|v| v.inner)
            .map(|v| v.voter)
            .collect()
    }

    /// Voters (inner or outer) whose snapshot shows `block` intact —
    /// candidates to source a repair of that block.
    pub fn repair_candidates(&self, block: u64) -> Vec<Identity> {
        self.votes
            .iter()
            .filter(|v| v.damage.binary_search(&block).is_err())
            .map(|v| v.voter)
            .collect()
    }

    /// Inner voters disagreeing with the given (post-repair) damage set.
    pub fn inner_disagreements(&self, own_damage: &[u64]) -> usize {
        self.votes
            .iter()
            .filter(|v| v.inner && v.damage != own_damage)
            .count()
    }

    /// Outer voters agreeing with the given damage set (inserted into the
    /// reference list at conclusion, §4.2).
    pub fn agreeing_outer(&self, own_damage: &[u64]) -> Vec<Identity> {
        self.votes
            .iter()
            .filter(|v| !v.inner && v.damage == own_damage)
            .map(|v| v.voter)
            .collect()
    }

    /// Invitees that committed (accepted) but never delivered a vote —
    /// penalized at evaluation (§5.1 reciprocity).
    pub fn committed_non_voters(&self) -> Vec<Identity> {
        self.invitees
            .iter()
            .filter(|i| {
                matches!(
                    i.status,
                    InviteeStatus::Accepted | InviteeStatus::AwaitingVote
                )
            })
            .map(|i| i.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll() -> PollState {
        PollState::new(
            PollId(1),
            AuId(0),
            SimTime::ZERO,
            SimTime(100),
            SimTime(200),
        )
    }

    fn id(i: u64) -> Identity {
        Identity(i)
    }

    #[test]
    fn record_vote_requires_invitation() {
        let mut p = poll();
        assert!(!p.record_vote(id(1), vec![]), "unsolicited vote ignored");
        p.add_invitee(id(1), true);
        assert!(p.record_vote(id(1), vec![]));
        assert!(!p.record_vote(id(1), vec![]), "duplicate vote ignored");
        assert_eq!(p.inner_votes(), 1);
    }

    #[test]
    fn inner_and_outer_votes_separated() {
        let mut p = poll();
        p.add_invitee(id(1), true);
        p.add_invitee(id(2), false);
        p.record_vote(id(1), vec![]);
        p.record_vote(id(2), vec![]);
        assert_eq!(p.inner_votes(), 1);
        assert_eq!(p.decisive_voters(), vec![id(1)]);
    }

    #[test]
    fn repair_candidates_exclude_damaged_voters() {
        let mut p = poll();
        p.add_invitee(id(1), true);
        p.add_invitee(id(2), true);
        p.record_vote(id(1), vec![5]);
        p.record_vote(id(2), vec![7]);
        assert_eq!(p.repair_candidates(5), vec![id(2)]);
        assert_eq!(p.repair_candidates(7), vec![id(1)]);
        assert_eq!(p.repair_candidates(9).len(), 2);
    }

    #[test]
    fn disagreement_counting() {
        let mut p = poll();
        for i in 0..5 {
            p.add_invitee(id(i), true);
        }
        p.record_vote(id(0), vec![]);
        p.record_vote(id(1), vec![]);
        p.record_vote(id(2), vec![3]);
        assert_eq!(p.inner_disagreements(&[]), 1);
        assert_eq!(p.inner_disagreements(&[3]), 2);
    }

    #[test]
    fn agreeing_outer_voters() {
        let mut p = poll();
        p.add_invitee(id(1), false);
        p.add_invitee(id(2), false);
        p.record_vote(id(1), vec![]);
        p.record_vote(id(2), vec![9]);
        assert_eq!(p.agreeing_outer(&[]), vec![id(1)]);
    }

    #[test]
    fn committed_non_voters_detected() {
        let mut p = poll();
        let a = p.add_invitee(id(1), true);
        let b = p.add_invitee(id(2), true);
        p.add_invitee(id(3), true);
        p.invitees[a].status = InviteeStatus::Accepted;
        p.invitees[b].status = InviteeStatus::AwaitingVote;
        assert_eq!(p.committed_non_voters(), vec![id(1), id(2)]);
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    /// Up to 5 distinct damaged block indices in `0..32`, sorted (the
    /// canonical form a vote carries).
    fn random_damage(rng: &mut SimRng) -> Vec<u64> {
        let blocks: Vec<u64> = (0..32).collect();
        let k = rng.below(6);
        let mut d = rng.sample(&blocks, k);
        d.sort_unstable();
        d
    }

    /// Tally invariants over arbitrary vote sets: disagreement counts
    /// partition, repair candidates really are intact at the block, and
    /// decisive voters are exactly the inner voters.
    #[test]
    fn tally_invariants() {
        let mut rng = SimRng::seed_from_u64(0x706f_6c01);
        for _ in 0..128 {
            let damages: Vec<Vec<u64>> = (0..1 + rng.below(19))
                .map(|_| random_damage(&mut rng))
                .collect();
            let own = random_damage(&mut rng);
            let mut p = PollState::new(
                PollId(1),
                AuId(0),
                SimTime::ZERO,
                SimTime(1_000),
                SimTime(2_000),
            );
            for (i, d) in damages.iter().enumerate() {
                let id = Identity(i as u64);
                let inner = i % 3 != 0; // mix inner and outer
                p.add_invitee(id, inner);
                assert!(p.record_vote(id, d.clone()));
            }
            let inner_total = p.inner_votes();
            let disagreeing = p.inner_disagreements(&own);
            let agreeing = p
                .votes
                .iter()
                .filter(|v| v.inner && v.damage == own)
                .count();
            assert_eq!(inner_total, disagreeing + agreeing);
            assert_eq!(p.decisive_voters().len(), inner_total);

            for block in 0u64..32 {
                for candidate in p.repair_candidates(block) {
                    let vote = p.votes.iter().find(|v| v.voter == candidate).unwrap();
                    assert!(
                        !vote.damage.contains(&block),
                        "candidate must be intact at {block}"
                    );
                }
            }
        }
    }

    /// Votes are only counted once per invitee and only from invitees.
    #[test]
    fn vote_recording_is_exact() {
        let mut rng = SimRng::seed_from_u64(0x706f_6c02);
        for _ in 0..128 {
            let n_invited = 1 + rng.below(9);
            let n_strangers = rng.below(5);
            let mut p = PollState::new(
                PollId(2),
                AuId(0),
                SimTime::ZERO,
                SimTime(1_000),
                SimTime(2_000),
            );
            for i in 0..n_invited {
                p.add_invitee(Identity(i as u64), true);
            }
            // Strangers' votes are all rejected.
            for s in 0..n_strangers {
                assert!(!p.record_vote(Identity(1_000 + s as u64), vec![]));
            }
            // Each invitee votes twice; the second is rejected.
            for i in 0..n_invited {
                assert!(p.record_vote(Identity(i as u64), vec![]));
                assert!(!p.record_vote(Identity(i as u64), vec![]));
            }
            assert_eq!(p.votes.len(), n_invited);
        }
    }
}

//! Dynamic membership (the paper's §9 second future-work item: "we need
//! to understand how our defenses against attrition work in a more
//! dynamic environment, where new loyal peers continually join the system
//! over time").
//!
//! A joining peer starts *cold*: it holds a fresh replica (obtained from
//! the publisher, §2), knows only its operator-configured friends, and is
//! unknown to everyone else — so its invitations face the full
//! unknown-peer drop rate and refractory gauntlet until nominations and
//! introductions integrate it. [`integration_report`] measures exactly
//! that ramp.

use lockss_sim::{Duration, SimTime};
use lockss_storage::AuId;

use crate::peer::AuState;
use crate::reflist::RefList;
use crate::types::Identity;
use crate::world::{Eng, World};

impl World {
    /// Adds a cold-start loyal peer at the current instant and schedules
    /// its first polls. Returns its peer index.
    ///
    /// The newcomer samples its friends uniformly from the existing
    /// population (an operator would configure them); nobody else learns
    /// of it until it shows up in votes and nominations.
    pub fn join_loyal_peer(&mut self, eng: &mut Eng) -> usize {
        let index = self.peers.len();
        let node = self
            .net
            .add_node(lockss_net::LinkSpec::sample(&mut self.rng));
        let me = Identity::loyal(index as u32);

        // Same draw sequence as sampling from a materialized identity list,
        // without building the O(population) list per join.
        let friends: Vec<Identity> = self
            .rng
            .sample_indices(self.peers.len(), self.cfg.protocol.friends)
            .into_iter()
            .map(|idx| self.peers.identity(idx))
            .collect();

        // Friendship is operator-mediated and mutual: the joining library's
        // operator exchanges contacts with its friends' operators, which is
        // the only way a brand-new identity can ever enter anyone's
        // reference list (nominations only propagate already-known peers).
        for f in &friends {
            if let Some(fi) = f.loyal_index() {
                for au_state in self.peers.aus_mut(fi as usize) {
                    au_state.reflist.add_friend(me);
                    // The friend's operator also vouches locally: known at
                    // even so the newcomer's invitations are not dropped as
                    // unknown.
                    au_state
                        .known
                        .seed(me, crate::reputation::Grade::Even, eng.now());
                }
            }
        }

        let mut per_au = Vec::with_capacity(self.cfg.n_aus);
        for _ in 0..self.cfg.n_aus {
            // Cold start: the reference list begins as just the friends.
            per_au.push(AuState::new(RefList::new(friends.clone(), friends.clone())));
        }
        let rng = self.rng.fork();
        self.peers.push(node, me, per_au, rng);
        self.bump_loyal_count();
        if let Some(o) = self.obs() {
            o.peer_joins.inc();
        }
        self.trace(eng, || crate::trace::TraceEvent::PeerJoin {
            peer: index as u32,
        });

        // The newcomer's replicas are pristine (fresh from the publisher)
        // and begin their own audit schedule immediately, at random
        // phases.
        let interval = self.cfg.protocol.poll_interval;
        for au in 0..self.cfg.n_aus {
            let phase = self.rng.duration_between(Duration::ZERO, interval);
            eng.schedule_at(eng.now() + phase, move |w: &mut World, e| {
                w.start_poll(e, index, AuId(au as u32));
            });
        }
        index
    }

    /// How integrated a (possibly late-joining) peer is: the fraction of
    /// the population whose reference list for `au` contains it.
    pub fn reflist_penetration(&self, peer: usize, au: AuId) -> f64 {
        let id = self.peers.identity(peer);
        let others = self.peers.len() - 1;
        if others == 0 {
            return 0.0;
        }
        let holding = (0..self.peers.len())
            .filter(|&i| i != peer && self.peers.au(i, au.index()).reflist.contains(id))
            .count();
        holding as f64 / others as f64
    }
}

/// Integration metrics for one late joiner.
#[derive(Clone, Debug)]
pub struct IntegrationReport {
    /// When the peer joined.
    pub joined_at: SimTime,
    /// Successful polls it completed after joining.
    pub successful_polls: u64,
    /// Failed polls after joining.
    pub failed_polls: u64,
    /// Final reference-list penetration (mean over AUs).
    pub penetration: f64,
}

/// Summarizes how well peer `index` (a late joiner) has integrated.
pub fn integration_report(world: &World, index: usize, joined_at: SimTime) -> IntegrationReport {
    // Poll outcomes for this peer are tracked globally; recount from its
    // own per-AU state is not retained, so use penetration + the ledger as
    // integration signals. Successful polls are read from the metrics.
    let mut penetration = 0.0;
    for au in 0..world.cfg.n_aus {
        penetration += world.reflist_penetration(index, AuId(au as u32));
    }
    penetration /= world.cfg.n_aus as f64;
    IntegrationReport {
        joined_at,
        successful_polls: 0, // filled by callers that track per-peer polls
        failed_polls: 0,
        penetration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use lockss_effort::CostModel;
    use lockss_sim::Engine;
    use lockss_storage::AuSpec;

    fn config(seed: u64) -> WorldConfig {
        let au_spec = AuSpec {
            size_bytes: 50_000_000,
            block_bytes: 1_000_000,
        };
        let mut cfg = WorldConfig {
            n_peers: 30,
            n_aus: 2,
            au_spec,
            mtbf_years: 5.0,
            seed,
            ..WorldConfig::default()
        };
        cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
        cfg.protocol.poll_interval = Duration::from_days(30);
        cfg.protocol.grade_decay = Duration::from_days(60);
        cfg
    }

    #[test]
    fn joiner_gets_integrated_over_time() {
        let mut world = World::new(config(31));
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        // Let the network reach steady state, then join.
        eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(60));
        let joiner = world.join_loyal_peer(&mut eng);
        let joined_at = eng.now();
        let early = world.reflist_penetration(joiner, AuId(0));

        eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(420));
        let late = world.reflist_penetration(joiner, AuId(0));
        assert!(late > early, "penetration should grow: {early} -> {late}");
        assert!(
            late > 0.05,
            "joiner should reach some reference lists: {late}"
        );

        let report = integration_report(&world, joiner, joined_at);
        assert!(report.penetration > 0.0);
        // The joiner does real work once integrated.
        assert!(world.peers.ledger(joiner).total_secs() > 0.0);
    }

    #[test]
    fn joiner_counts_as_loyal() {
        let mut world = World::new(config(33));
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        let before = world.n_loyal();
        let joiner = world.join_loyal_peer(&mut eng);
        assert_eq!(world.n_loyal(), before + 1);
        assert_eq!(joiner, before);
        // Its messages route as a loyal peer, not an adversary minion.
        assert!(world.peers.identity(joiner).loyal_index().is_some());
    }

    #[test]
    fn penetration_of_established_peer_is_substantial() {
        let mut world = World::new(config(35));
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(90));
        // A founding peer should sit in a decent share of reference lists
        // (it started in ~reflist_initial of them).
        let p = world.reflist_penetration(0, AuId(0));
        assert!(p > 0.2, "founding peer penetration {p}");
    }
}

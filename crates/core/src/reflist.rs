//! Reference list and friends list maintenance (§4.1, §4.2).
//!
//! The reference list holds, per AU, the identities a poller samples its
//! inner circle from: "mostly peers that have agreed with the poller in
//! recent polls on the AU, and a few peers from its static friends list."
//! At each poll conclusion the poller removes the voters whose votes
//! determined the outcome (sample-bias defense inherited from the SOSP '03
//! protocol) and inserts agreeing outer-circle voters plus some friends.

use lockss_sim::SimRng;

use crate::config::ProtocolConfig;
use crate::types::Identity;

/// One peer's per-AU reference list plus the static friends list.
#[derive(Clone, Debug, Default)]
pub struct RefList {
    entries: Vec<Identity>,
    friends: Vec<Identity>,
}

impl RefList {
    /// Builds a list with the given static friends and initial entries.
    pub fn new(friends: Vec<Identity>, initial: Vec<Identity>) -> RefList {
        let mut rl = RefList {
            entries: Vec::new(),
            friends,
        };
        for id in initial {
            rl.insert(id, usize::MAX);
        }
        rl
    }

    /// Current reference-list members.
    pub fn members(&self) -> &[Identity] {
        &self.entries
    }

    /// The static friends list.
    pub fn friends(&self) -> &[Identity] {
        &self.friends
    }

    /// Adds an operator-configured friend (e.g. a newly joined library
    /// whose operator exchanged contacts with ours; see `churn`).
    pub fn add_friend(&mut self, id: Identity) {
        if !self.friends.contains(&id) {
            self.friends.push(id);
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `id` is on the list.
    pub fn contains(&self, id: Identity) -> bool {
        self.entries.contains(&id)
    }

    /// Inserts `id` if absent, evicting the front (oldest) entry when the
    /// cap is exceeded.
    pub fn insert(&mut self, id: Identity, cap: usize) {
        if self.entries.contains(&id) {
            return;
        }
        self.entries.push(id);
        while self.entries.len() > cap {
            self.entries.remove(0);
        }
    }

    /// Removes `id` if present.
    pub fn remove(&mut self, id: Identity) {
        self.entries.retain(|&e| e != id);
    }

    /// Samples up to `k` distinct members uniformly (the inner-circle
    /// sample).
    pub fn sample(&self, k: usize, rng: &mut SimRng) -> Vec<Identity> {
        rng.sample(&self.entries, k)
    }

    /// A random subset for nominations (§4.2).
    pub fn nominate(&self, k: usize, rng: &mut SimRng) -> Vec<Identity> {
        rng.sample(&self.entries, k)
    }

    /// Applies the poll-conclusion update (§4.3): removes the decisive
    /// voters, inserts agreeing outer-circle voters, and biases in some
    /// friends.
    pub fn conclude_poll(
        &mut self,
        decisive_voters: &[Identity],
        agreeing_outer: &[Identity],
        cfg: &ProtocolConfig,
        rng: &mut SimRng,
    ) {
        for &v in decisive_voters {
            self.remove(v);
        }
        for &v in agreeing_outer {
            self.insert(v, cfg.reflist_cap);
        }
        let bias: Vec<Identity> = rng.sample(&self.friends, cfg.friend_bias);
        for f in bias {
            self.insert(f, cfg.reflist_cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<Identity> {
        v.iter().map(|&i| Identity(i)).collect()
    }

    #[test]
    fn insert_is_idempotent_and_capped() {
        let mut rl = RefList::new(vec![], vec![]);
        rl.insert(Identity(1), 3);
        rl.insert(Identity(1), 3);
        rl.insert(Identity(2), 3);
        rl.insert(Identity(3), 3);
        assert_eq!(rl.len(), 3);
        rl.insert(Identity(4), 3);
        assert_eq!(rl.len(), 3);
        assert!(!rl.contains(Identity(1)), "oldest evicted at cap");
        assert!(rl.contains(Identity(4)));
    }

    #[test]
    fn sample_draws_distinct_members() {
        let rl = RefList::new(vec![], ids(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let mut rng = SimRng::seed_from_u64(1);
        let s = rl.sample(4, &mut rng);
        assert_eq!(s.len(), 4);
        let mut t = s.clone();
        t.sort();
        t.dedup();
        assert_eq!(t.len(), 4);
        for id in s {
            assert!(rl.contains(id));
        }
    }

    #[test]
    fn conclude_poll_removes_decisive_and_adds_outer_and_friends() {
        let cfg = ProtocolConfig::default();
        let friends = ids(&[100, 101, 102]);
        let mut rl = RefList::new(friends, ids(&[1, 2, 3, 4, 5]));
        let mut rng = SimRng::seed_from_u64(2);
        rl.conclude_poll(&ids(&[1, 2]), &ids(&[50, 51]), &cfg, &mut rng);
        assert!(!rl.contains(Identity(1)));
        assert!(!rl.contains(Identity(2)));
        assert!(rl.contains(Identity(50)));
        assert!(rl.contains(Identity(51)));
        // friend_bias = 2 friends inserted.
        let friend_count = [100u64, 101, 102]
            .iter()
            .filter(|&&f| rl.contains(Identity(f)))
            .count();
        assert_eq!(friend_count, 2);
    }

    #[test]
    fn churn_preserves_cap() {
        let cfg = ProtocolConfig::default();
        let mut rl = RefList::new(ids(&[900, 901]), ids(&(0..40).collect::<Vec<u64>>()));
        let mut rng = SimRng::seed_from_u64(3);
        for round in 0..50u64 {
            let decisive: Vec<Identity> = rl.sample(10, &mut rng);
            let newcomers = ids(&[1000 + round * 3, 1001 + round * 3, 1002 + round * 3]);
            rl.conclude_poll(&decisive, &newcomers, &cfg, &mut rng);
            assert!(rl.len() <= cfg.reflist_cap);
        }
    }

    #[test]
    fn empty_list_sampling() {
        let rl = RefList::new(vec![], vec![]);
        let mut rng = SimRng::seed_from_u64(4);
        assert!(rl.sample(5, &mut rng).is_empty());
        assert!(rl.is_empty());
    }
}

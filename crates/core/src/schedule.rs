//! The per-peer task schedule (§5.1, rate limitation).
//!
//! "To prevent over-commitment, peers maintain a task schedule of their
//! promises to perform effort, both to generate votes for others and to
//! call their own polls. If the effort of computing the vote solicited by
//! an incoming Poll message cannot be accommodated in the schedule, the
//! invitation is refused."
//!
//! The schedule models a single CPU as a sorted list of committed busy
//! intervals; reservations find the earliest gap that fits within a
//! deadline window. Utilization in the paper's configurations is low
//! (over-provisioning is the point), so a linear scan with lazy pruning of
//! past intervals is both simple and fast.

use lockss_sim::{Duration, SimTime};

/// Handle to a reservation, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reservation {
    pub start: SimTime,
    pub end: SimTime,
    id: u64,
}

#[derive(Clone, Copy, Debug)]
struct Busy {
    start: SimTime,
    end: SimTime,
    id: u64,
}

/// A single-CPU commitment calendar.
#[derive(Clone, Debug, Default)]
pub struct TaskSchedule {
    /// Sorted by start, non-overlapping.
    busy: Vec<Busy>,
    next_id: u64,
    /// Cumulative committed busy time (for utilization reporting).
    committed_total: Duration,
}

impl TaskSchedule {
    /// An empty schedule.
    pub fn new() -> TaskSchedule {
        TaskSchedule::default()
    }

    /// Discards intervals that ended before `now` (call opportunistically).
    pub fn prune(&mut self, now: SimTime) {
        self.busy.retain(|b| b.end > now);
    }

    /// Attempts to reserve `duration` of CPU inside `[earliest, deadline]`.
    ///
    /// Returns the reservation (earliest feasible start) or `None` if no
    /// gap fits, in which case the §5.1 response is to refuse the
    /// invitation.
    pub fn try_reserve(
        &mut self,
        now: SimTime,
        earliest: SimTime,
        deadline: SimTime,
        duration: Duration,
    ) -> Option<Reservation> {
        self.prune(now);
        let earliest = earliest.max(now);
        if earliest + duration > deadline {
            return None;
        }
        let mut candidate = earliest;
        let mut insert_at = self.busy.len();
        for (i, b) in self.busy.iter().enumerate() {
            if b.end <= candidate {
                continue;
            }
            if candidate + duration <= b.start {
                insert_at = i;
                break;
            }
            candidate = b.end;
            if candidate + duration > deadline {
                return None;
            }
            insert_at = i + 1;
        }
        if candidate + duration > deadline {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.busy.insert(
            insert_at,
            Busy {
                start: candidate,
                end: candidate + duration,
                id,
            },
        );
        self.committed_total += duration;
        Some(Reservation {
            start: candidate,
            end: candidate + duration,
            id,
        })
    }

    /// Reserves `duration` at the earliest opportunity with no deadline
    /// (the poller's own work is never refused, only delayed).
    pub fn reserve(&mut self, now: SimTime, duration: Duration) -> Reservation {
        self.try_reserve(now, now, SimTime(u64::MAX), duration)
            .expect("unbounded reservation always succeeds")
    }

    /// Cancels a reservation (a deserting poller never sent its PollProof).
    /// Returns true if it was still held.
    pub fn cancel(&mut self, r: Reservation) -> bool {
        if let Some(i) = self.busy.iter().position(|b| b.id == r.id) {
            let b = self.busy.remove(i);
            self.committed_total -= b.end.since(b.start);
            true
        } else {
            false
        }
    }

    /// Number of live committed intervals.
    pub fn live(&self) -> usize {
        self.busy.len()
    }

    /// Total CPU time ever committed (including later-cancelled time being
    /// subtracted), for utilization diagnostics.
    pub fn committed_total(&self) -> Duration {
        self.committed_total
    }

    /// The end of the last committed interval, if any.
    pub fn horizon(&self) -> Option<SimTime> {
        self.busy.last().map(|b| b.end)
    }

    /// Committed busy time inside `[now, now + window]` (the §9 adaptive
    /// acceptance signal).
    pub fn busy_within(&self, now: SimTime, window: Duration) -> Duration {
        let end = now + window;
        let mut busy = Duration::ZERO;
        for b in &self.busy {
            if b.end <= now || b.start >= end {
                continue;
            }
            let s = b.start.max(now);
            let e = b.end.min(end);
            busy += e.since(s);
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }
    fn d(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn empty_schedule_reserves_immediately() {
        let mut s = TaskSchedule::new();
        let r = s.try_reserve(t(10), t(10), t(100), d(5)).expect("fits");
        assert_eq!(r.start, t(10));
        assert_eq!(r.end, t(15));
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let mut s = TaskSchedule::new();
        let a = s.try_reserve(t(0), t(0), t(100), d(10)).unwrap();
        let b = s.try_reserve(t(0), t(0), t(100), d(10)).unwrap();
        assert_eq!(a.end, b.start);
        assert_eq!(b.end, t(20));
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn gap_between_reservations_is_used() {
        let mut s = TaskSchedule::new();
        let _a = s.try_reserve(t(0), t(0), t(100), d(10)).unwrap(); // [0,10)
        let _c = s.try_reserve(t(0), t(50), t(100), d(10)).unwrap(); // [50,60)
        let b = s.try_reserve(t(0), t(0), t(100), d(20)).unwrap();
        assert_eq!(b.start, t(10), "fits in the gap [10,50)");
        assert_eq!(b.end, t(30));
    }

    #[test]
    fn deadline_refusal() {
        let mut s = TaskSchedule::new();
        let _ = s.try_reserve(t(0), t(0), t(100), d(50)).unwrap(); // [0,50)
                                                                   // Window [0, 60] has only [50,60) free: a 20s task cannot fit.
        assert!(s.try_reserve(t(0), t(0), t(60), d(20)).is_none());
        // But a 10s task exactly fits.
        let r = s.try_reserve(t(0), t(0), t(60), d(10)).unwrap();
        assert_eq!(r.start, t(50));
    }

    #[test]
    fn earliest_bound_respected() {
        let mut s = TaskSchedule::new();
        let r = s.try_reserve(t(0), t(30), t(100), d(5)).unwrap();
        assert_eq!(r.start, t(30));
    }

    #[test]
    fn cancel_frees_the_slot() {
        let mut s = TaskSchedule::new();
        let a = s.try_reserve(t(0), t(0), t(100), d(50)).unwrap();
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "double cancel is a no-op");
        let b = s.try_reserve(t(0), t(0), t(60), d(20)).unwrap();
        assert_eq!(b.start, t(0), "cancelled slot is reusable");
    }

    #[test]
    fn prune_drops_past_intervals() {
        let mut s = TaskSchedule::new();
        let _ = s.try_reserve(t(0), t(0), t(100), d(10)).unwrap();
        let _ = s.try_reserve(t(0), t(0), t(100), d(10)).unwrap();
        s.prune(t(15));
        assert_eq!(s.live(), 1);
        s.prune(t(25));
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn unbounded_reserve_never_fails() {
        let mut s = TaskSchedule::new();
        for _ in 0..100 {
            s.reserve(t(0), d(1000));
        }
        assert_eq!(s.live(), 100);
        assert_eq!(s.horizon(), Some(t(100_000)));
    }

    #[test]
    fn zero_duration_reservation() {
        let mut s = TaskSchedule::new();
        let r = s.try_reserve(t(5), t(5), t(5), Duration::ZERO).unwrap();
        assert_eq!(r.start, r.end);
    }

    #[test]
    fn reservations_never_overlap_property() {
        // Deterministic pseudo-random stress: schedule and cancel many
        // tasks, assert the invariant after each operation.
        let mut s = TaskSchedule::new();
        let mut held = Vec::new();
        let mut x: u64 = 12345;
        for step in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let now = t(step);
            if x.is_multiple_of(3) && !held.is_empty() {
                let r: Reservation = held.swap_remove((x / 3) as usize % held.len());
                s.cancel(r);
            } else {
                let dur = d(1 + x % 30);
                let window = 40 + (x >> 8) % 200;
                if let Some(r) = s.try_reserve(now, now, now + d(window), dur) {
                    held.push(r);
                }
            }
            // Invariant: sorted, non-overlapping.
            let mut prev_end = SimTime::ZERO;
            for b in &s.busy {
                assert!(b.start >= prev_end, "overlap at step {step}");
                assert!(b.end >= b.start);
                prev_end = b.end;
            }
        }
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    /// No sequence of reservations and cancellations can make busy
    /// intervals overlap, and every granted reservation fits its
    /// window.
    #[test]
    fn intervals_never_overlap() {
        let mut rng = SimRng::seed_from_u64(0x7363_6801);
        for _ in 0..64 {
            let n_ops = 1 + rng.below(119);
            let mut s = TaskSchedule::new();
            let mut held: Vec<Reservation> = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..n_ops {
                let advance = rng.below(1_000) as u64;
                let dur = 1 + rng.below(119) as u64;
                let window = 10 + rng.below(390) as u64;
                let cancel_one = rng.chance(0.5);
                now += Duration::from_secs(advance);
                if cancel_one && !held.is_empty() {
                    let r = held.remove(0);
                    s.cancel(r);
                    continue;
                }
                let deadline = now + Duration::from_secs(window);
                if let Some(r) = s.try_reserve(now, now, deadline, Duration::from_secs(dur)) {
                    assert!(r.start >= now);
                    assert!(r.end <= deadline);
                    assert_eq!(r.end.since(r.start), Duration::from_secs(dur));
                    held.push(r);
                }
                // Check pairwise disjointness of everything still held.
                let mut spans: Vec<(SimTime, SimTime)> =
                    held.iter().map(|r| (r.start, r.end)).collect();
                spans.sort();
                for w in spans.windows(2) {
                    assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
                }
            }
        }
    }

    /// Reservations are granted earliest-first: a second identical
    /// request never starts before an earlier one.
    #[test]
    fn reservations_are_fifo_for_identical_requests() {
        let mut rng = SimRng::seed_from_u64(0x7363_6802);
        for _ in 0..128 {
            let dur = 1 + rng.below(59) as u64;
            let n = 2 + rng.below(8);
            let mut s = TaskSchedule::new();
            let mut last_start = SimTime::ZERO;
            for _ in 0..n {
                let r = s
                    .try_reserve(
                        SimTime::ZERO,
                        SimTime::ZERO,
                        SimTime(u64::MAX),
                        Duration::from_secs(dur),
                    )
                    .expect("unbounded window");
                assert!(r.start >= last_start);
                last_start = r.start;
            }
        }
    }
}

#[cfg(test)]
mod busy_within_tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }
    fn d(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn busy_within_clips_to_window() {
        let mut s = TaskSchedule::new();
        let _ = s.try_reserve(t(0), t(10), t(100), d(20)).unwrap(); // [10,30)
        let _ = s.try_reserve(t(0), t(50), t(100), d(10)).unwrap(); // [50,60)
                                                                    // Window [0,40): only [10,30) counts.
        assert_eq!(s.busy_within(t(0), d(40)), d(20));
        // Window [20,55): clips both intervals: [20,30) + [50,55).
        assert_eq!(s.busy_within(t(20), d(35)), d(15));
        // Window beyond everything.
        assert_eq!(s.busy_within(t(70), d(30)), Duration::ZERO);
    }

    #[test]
    fn empty_schedule_is_idle() {
        let s = TaskSchedule::new();
        assert_eq!(s.busy_within(t(0), d(1000)), Duration::ZERO);
    }
}

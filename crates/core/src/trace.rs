//! The structured event-trace layer: the causal event taxonomy and the
//! zero-cost sink trait the world emits through.
//!
//! Every consequential state transition of a run — poll lifecycle, every
//! message send with its suppression verdict, admission-control verdicts,
//! storage damage and repair, adversary timers and provenance-tagged
//! actions, churn arrivals, and phase marks — is describable as a
//! [`TraceEvent`]. A run that has a [`TraceSink`] installed (see
//! [`crate::world::World::set_trace_sink`]) receives the full causal
//! stream; a run without one pays only an `Option` null check per emission
//! point, because event payloads are built inside closures that never run
//! untraced.
//!
//! The sink is deliberately defined here, next to the types it describes,
//! while everything *about* traces — the varint binary format, the
//! recorder, replay verification, diffing, and statistics — lives in the
//! `lockss-trace` crate, which depends on this one.

use lockss_sim::SimTime;

use crate::msg::Message;

/// The stable event kind codes (also the wire codes in `lockss-trace`).
///
/// Codes are append-only: new kinds take fresh numbers, existing numbers
/// are never reused, so traces recorded by older builds stay decodable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A poll opened at a loyal poller.
    PollStart = 1,
    /// A poll concluded, with its outcome.
    PollOutcome = 2,
    /// A message was handed to the network (or suppressed at the source).
    MessageSend = 3,
    /// An admission-control verdict on an incoming invitation.
    Admission = 4,
    /// A storage-damage arrival hit a replica block.
    Damage = 5,
    /// A repair block was applied at a poller.
    Repair = 6,
    /// An adversary timer fired (channel + strategy-private tag).
    AdversaryTimer = 7,
    /// A provenance-tagged adversary action (strategy-declared).
    AdversaryAction = 8,
    /// A loyal peer joined the population after the start of the run.
    PeerJoin = 9,
    /// A named phase boundary was recorded in the run metrics.
    PhaseMark = 10,
    /// The mobile adversary took over a loyal peer.
    Compromise = 11,
    /// A compromised peer was cured: loyal again, replica still damaged.
    Cure = 12,
    /// A repair block served by a compromised peer was applied: the target
    /// block stays (or becomes) damaged instead of healing.
    PoisonedRepair = 13,
}

impl TraceEventKind {
    /// All kinds, in code order.
    pub const ALL: [TraceEventKind; 13] = [
        TraceEventKind::PollStart,
        TraceEventKind::PollOutcome,
        TraceEventKind::MessageSend,
        TraceEventKind::Admission,
        TraceEventKind::Damage,
        TraceEventKind::Repair,
        TraceEventKind::AdversaryTimer,
        TraceEventKind::AdversaryAction,
        TraceEventKind::PeerJoin,
        TraceEventKind::PhaseMark,
        TraceEventKind::Compromise,
        TraceEventKind::Cure,
        TraceEventKind::PoisonedRepair,
    ];

    /// Number of registered kinds (codes run `1..=COUNT`).
    pub const COUNT: usize = Self::ALL.len();

    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<TraceEventKind> {
        Self::ALL.iter().copied().find(|k| k.code() == code)
    }

    /// This kind's bit in a kind bitmap (bit `code - 1`), the presence
    /// mask the block-columnar trace format keeps per block so readers
    /// can skip whole blocks — and whole payload columns — by kind.
    /// Kind codes are append-only and capped at 64 by this encoding.
    pub fn bit(self) -> u64 {
        1u64 << (self.code() - 1)
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::PollStart => "poll-start",
            TraceEventKind::PollOutcome => "poll-outcome",
            TraceEventKind::MessageSend => "message-send",
            TraceEventKind::Admission => "admission",
            TraceEventKind::Damage => "damage",
            TraceEventKind::Repair => "repair",
            TraceEventKind::AdversaryTimer => "adversary-timer",
            TraceEventKind::AdversaryAction => "adversary-action",
            TraceEventKind::PeerJoin => "peer-join",
            TraceEventKind::PhaseMark => "phase-mark",
            TraceEventKind::Compromise => "compromise",
            TraceEventKind::Cure => "cure",
            TraceEventKind::PoisonedRepair => "poisoned-repair",
        }
    }
}

impl std::fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a poll concluded (the [`TraceEvent::PollOutcome`] payload).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PollConclusion {
    /// Landslide agreement: the replica was audited clean (§4.3).
    Win = 0,
    /// Landslide disagreement: repairs were needed (alarm raised).
    Loss = 1,
    /// Quorate but no landslide either way (alarm raised).
    Inconclusive = 2,
    /// Fewer votes than the quorum: the poll failed silently.
    Inquorate = 3,
}

impl PollConclusion {
    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<PollConclusion> {
        match code {
            0 => Some(PollConclusion::Win),
            1 => Some(PollConclusion::Loss),
            2 => Some(PollConclusion::Inconclusive),
            3 => Some(PollConclusion::Inquorate),
            _ => None,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PollConclusion::Win => "win",
            PollConclusion::Loss => "loss",
            PollConclusion::Inconclusive => "inconclusive",
            PollConclusion::Inquorate => "inquorate",
        }
    }
}

/// An admission-control verdict (the [`TraceEvent::Admission`] payload),
/// mirroring [`crate::admission::AdmissionOutcome`] plus the introduction
/// bypass distinction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum AdmissionVerdict {
    /// Admitted through the ordinary reputation path.
    Admitted = 0,
    /// Admitted by consuming an introduction.
    AdmittedIntroduced = 1,
    /// Silently dropped by the random-drop filter.
    RandomDrop = 2,
    /// Auto-rejected by an active refractory period.
    Refractory = 3,
    /// Rate-limited: the identity already used its admission slot.
    RateLimited = 4,
}

impl AdmissionVerdict {
    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<AdmissionVerdict> {
        match code {
            0 => Some(AdmissionVerdict::Admitted),
            1 => Some(AdmissionVerdict::AdmittedIntroduced),
            2 => Some(AdmissionVerdict::RandomDrop),
            3 => Some(AdmissionVerdict::Refractory),
            4 => Some(AdmissionVerdict::RateLimited),
            _ => None,
        }
    }

    /// True for either admitted variant.
    pub fn is_admitted(self) -> bool {
        matches!(
            self,
            AdmissionVerdict::Admitted | AdmissionVerdict::AdmittedIntroduced
        )
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionVerdict::Admitted => "admitted",
            AdmissionVerdict::AdmittedIntroduced => "admitted-introduced",
            AdmissionVerdict::RandomDrop => "random-drop",
            AdmissionVerdict::Refractory => "refractory",
            AdmissionVerdict::RateLimited => "rate-limited",
        }
    }
}

/// A protocol-message kind code (the compact form of
/// [`Message::kind`] used in [`TraceEvent::MessageSend`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum MsgKind {
    /// A poll invitation.
    Poll = 0,
    /// Acceptance/refusal of an invitation.
    PollAck = 1,
    /// The remaining effort proof.
    PollProof = 2,
    /// A vote.
    Vote = 3,
    /// A repair-block request.
    RepairRequest = 4,
    /// A repair block.
    Repair = 5,
    /// An evaluation receipt.
    EvaluationReceipt = 6,
}

impl MsgKind {
    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<MsgKind> {
        match code {
            0 => Some(MsgKind::Poll),
            1 => Some(MsgKind::PollAck),
            2 => Some(MsgKind::PollProof),
            3 => Some(MsgKind::Vote),
            4 => Some(MsgKind::RepairRequest),
            5 => Some(MsgKind::Repair),
            6 => Some(MsgKind::EvaluationReceipt),
            _ => None,
        }
    }

    /// Short label (matches [`Message::kind`]).
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Poll => "Poll",
            MsgKind::PollAck => "PollAck",
            MsgKind::PollProof => "PollProof",
            MsgKind::Vote => "Vote",
            MsgKind::RepairRequest => "RepairRequest",
            MsgKind::Repair => "Repair",
            MsgKind::EvaluationReceipt => "EvaluationReceipt",
        }
    }
}

impl From<&Message> for MsgKind {
    fn from(msg: &Message) -> MsgKind {
        match msg {
            Message::Poll { .. } => MsgKind::Poll,
            Message::PollAck { .. } => MsgKind::PollAck,
            Message::PollProof { .. } => MsgKind::PollProof,
            Message::Vote { .. } => MsgKind::Vote,
            Message::RepairRequest { .. } => MsgKind::RepairRequest,
            Message::Repair { .. } => MsgKind::Repair,
            Message::EvaluationReceipt { .. } => MsgKind::EvaluationReceipt,
        }
    }
}

/// One causal event of a run.
///
/// Identities, nodes, and polls are carried as their raw integer forms so
/// the taxonomy encodes compactly and compares exactly; the semantic
/// wrappers ([`crate::types::Identity`], [`crate::types::PollId`],
/// `lockss_net::NodeId`) all expose these integers losslessly.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// A poll opened at loyal peer `peer` on `au`.
    PollStart {
        /// Poller peer index.
        peer: u32,
        /// Archival unit index.
        au: u32,
        /// The globally unique poll id.
        poll: u64,
    },
    /// The poll concluded.
    PollOutcome {
        /// Poller peer index.
        peer: u32,
        /// Archival unit index.
        au: u32,
        /// The poll id.
        poll: u64,
        /// How it concluded.
        conclusion: PollConclusion,
        /// Valid votes recorded when it concluded.
        votes: u32,
    },
    /// `World::send_message` was invoked.
    MessageSend {
        /// Source network node index.
        from: u32,
        /// Destination network node index.
        to: u32,
        /// Message kind.
        kind: MsgKind,
        /// The AU the message concerns.
        au: u32,
        /// The poll the message belongs to.
        poll: u64,
        /// True if the network suppressed the send at the source (pipe
        /// stoppage): the suppression verdict.
        suppressed: bool,
    },
    /// An invitation hit the admission filter at a voter.
    Admission {
        /// The filtering peer index.
        peer: u32,
        /// The raw identity the poller presented.
        poller: u64,
        /// The verdict.
        verdict: AdmissionVerdict,
    },
    /// A storage-damage arrival.
    Damage {
        /// The hit peer index.
        peer: u32,
        /// Archival unit index.
        au: u32,
        /// Damaged block index.
        block: u64,
        /// True if the replica was intact before this hit.
        was_intact: bool,
    },
    /// A repair block was applied.
    Repair {
        /// The repairing poller's peer index.
        peer: u32,
        /// Archival unit index.
        au: u32,
        /// The poll that planned the repair.
        poll: u64,
        /// The repaired block index.
        block: u64,
        /// True if the replica became fully intact with this repair.
        intact_after: bool,
    },
    /// An adversary timer fired and is about to dispatch.
    AdversaryTimer {
        /// The adversary channel the timer was scheduled on.
        channel: u64,
        /// The strategy-private tag.
        tag: u64,
    },
    /// A strategy-declared adversary action (provenance tag).
    AdversaryAction {
        /// The adversary channel active when the action was declared.
        channel: u64,
        /// Strategy-chosen label, e.g. `"churn-storm/depart"`.
        label: String,
        /// Strategy-chosen magnitude (victims this wave, sybils minted...).
        magnitude: u64,
    },
    /// A loyal peer joined mid-run (churn arrival).
    PeerJoin {
        /// The new peer's index.
        peer: u32,
    },
    /// A metrics phase boundary.
    PhaseMark {
        /// The phase label.
        label: String,
    },
    /// The mobile adversary took over a loyal peer: shadow replicas were
    /// snapshotted and the real replicas corrupted.
    Compromise {
        /// The victim's peer index.
        peer: u32,
        /// Blocks newly corrupted across the victim's replicas.
        corrupted: u64,
    },
    /// A compromised peer returned to loyal behavior (cure ≠ heal: the
    /// replica damage persists until the repair machinery removes it).
    Cure {
        /// The cured peer's index.
        peer: u32,
        /// Damaged blocks left behind across the peer's replicas.
        residual: u64,
    },
    /// A repair block served by a compromised peer landed at a poller: the
    /// block stays (or becomes) damaged instead of healing.
    PoisonedRepair {
        /// The repairing poller's peer index.
        peer: u32,
        /// Archival unit index.
        au: u32,
        /// The poll that planned the repair.
        poll: u64,
        /// The poisoned block index.
        block: u64,
        /// The compromised serving peer's index.
        server: u32,
    },
}

impl TraceEvent {
    /// This event's kind code.
    pub fn kind(&self) -> TraceEventKind {
        match self {
            TraceEvent::PollStart { .. } => TraceEventKind::PollStart,
            TraceEvent::PollOutcome { .. } => TraceEventKind::PollOutcome,
            TraceEvent::MessageSend { .. } => TraceEventKind::MessageSend,
            TraceEvent::Admission { .. } => TraceEventKind::Admission,
            TraceEvent::Damage { .. } => TraceEventKind::Damage,
            TraceEvent::Repair { .. } => TraceEventKind::Repair,
            TraceEvent::AdversaryTimer { .. } => TraceEventKind::AdversaryTimer,
            TraceEvent::AdversaryAction { .. } => TraceEventKind::AdversaryAction,
            TraceEvent::PeerJoin { .. } => TraceEventKind::PeerJoin,
            TraceEvent::PhaseMark { .. } => TraceEventKind::PhaseMark,
            TraceEvent::Compromise { .. } => TraceEventKind::Compromise,
            TraceEvent::Cure { .. } => TraceEventKind::Cure,
            TraceEvent::PoisonedRepair { .. } => TraceEventKind::PoisonedRepair,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::PollStart { peer, au, poll } => {
                write!(f, "poll-start peer#{peer} au{au} poll{poll}")
            }
            TraceEvent::PollOutcome {
                peer,
                au,
                poll,
                conclusion,
                votes,
            } => write!(
                f,
                "poll-outcome peer#{peer} au{au} poll{poll} {} ({votes} votes)",
                conclusion.label()
            ),
            TraceEvent::MessageSend {
                from,
                to,
                kind,
                au,
                poll,
                suppressed,
            } => write!(
                f,
                "send {} node{from}->node{to} au{au} poll{poll}{}",
                kind.label(),
                if *suppressed { " SUPPRESSED" } else { "" }
            ),
            TraceEvent::Admission {
                peer,
                poller,
                verdict,
            } => write!(
                f,
                "admission peer#{peer} <- id{poller}: {}",
                verdict.label()
            ),
            TraceEvent::Damage {
                peer,
                au,
                block,
                was_intact,
            } => write!(
                f,
                "damage peer#{peer} au{au} block{block}{}",
                if *was_intact { " (first hit)" } else { "" }
            ),
            TraceEvent::Repair {
                peer,
                au,
                poll,
                block,
                intact_after,
            } => write!(
                f,
                "repair peer#{peer} au{au} poll{poll} block{block}{}",
                if *intact_after { " (now intact)" } else { "" }
            ),
            TraceEvent::AdversaryTimer { channel, tag } => {
                write!(f, "adversary-timer ch{channel} tag{tag}")
            }
            TraceEvent::AdversaryAction {
                channel,
                label,
                magnitude,
            } => write!(f, "adversary ch{channel} {label} x{magnitude}"),
            TraceEvent::PeerJoin { peer } => write!(f, "peer-join peer#{peer}"),
            TraceEvent::PhaseMark { label } => write!(f, "phase-mark '{label}'"),
            TraceEvent::Compromise { peer, corrupted } => {
                write!(f, "compromise peer#{peer} ({corrupted} blocks corrupted)")
            }
            TraceEvent::Cure { peer, residual } => {
                write!(f, "cure peer#{peer} ({residual} blocks still damaged)")
            }
            TraceEvent::PoisonedRepair {
                peer,
                au,
                poll,
                block,
                server,
            } => write!(
                f,
                "poisoned-repair peer#{peer} au{au} poll{poll} block{block} from peer#{server}"
            ),
        }
    }
}

/// Receives the causal event stream of a traced run.
///
/// Implementations live in `lockss-trace` (the binary recorder, the replay
/// verifier); the world calls [`TraceSink::record`] once per emitted event
/// with the simulated instant and the engine's executed-event ordinal, a
/// causal position that a faithful replay must reproduce exactly.
pub trait TraceSink {
    /// One event, in causal order. `seq` is the engine's executed-event
    /// count at emission (all events emitted by one engine event share it).
    fn record(&mut self, at: SimTime, seq: u64, event: &TraceEvent);

    /// Polled after each [`TraceSink::record`]; returning true makes the
    /// world abort the run via `Engine::request_stop` (used by replay
    /// verification to stop at the first divergence).
    fn wants_stop(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TraceEventKind::from_code(0), None);
        assert_eq!(TraceEventKind::from_code(200), None);
    }

    #[test]
    fn kind_bits_are_distinct_and_dense() {
        let mut mask = 0u64;
        for kind in TraceEventKind::ALL {
            assert_eq!(mask & kind.bit(), 0, "{kind} bit collides");
            mask |= kind.bit();
        }
        assert_eq!(mask, (1u64 << TraceEventKind::COUNT) - 1);
        assert_eq!(TraceEventKind::COUNT, TraceEventKind::ALL.len());
    }

    #[test]
    fn payload_codes_roundtrip() {
        for c in [
            PollConclusion::Win,
            PollConclusion::Loss,
            PollConclusion::Inconclusive,
            PollConclusion::Inquorate,
        ] {
            assert_eq!(PollConclusion::from_code(c.code()), Some(c));
        }
        assert_eq!(PollConclusion::from_code(9), None);
        for v in [
            AdmissionVerdict::Admitted,
            AdmissionVerdict::AdmittedIntroduced,
            AdmissionVerdict::RandomDrop,
            AdmissionVerdict::Refractory,
            AdmissionVerdict::RateLimited,
        ] {
            assert_eq!(AdmissionVerdict::from_code(v.code()), Some(v));
        }
        assert!(AdmissionVerdict::AdmittedIntroduced.is_admitted());
        assert!(!AdmissionVerdict::Refractory.is_admitted());
        for k in [
            MsgKind::Poll,
            MsgKind::PollAck,
            MsgKind::PollProof,
            MsgKind::Vote,
            MsgKind::RepairRequest,
            MsgKind::Repair,
            MsgKind::EvaluationReceipt,
        ] {
            assert_eq!(MsgKind::from_code(k.code()), Some(k));
        }
    }

    #[test]
    fn msg_kind_matches_message_kind_labels() {
        use crate::types::{Identity, PollId};
        use lockss_storage::AuId;
        let msg = Message::PollAck {
            au: AuId(0),
            poll: PollId(1),
            accept: true,
        };
        assert_eq!(MsgKind::from(&msg).label(), msg.kind());
        let msg = Message::Vote {
            au: AuId(0),
            poll: PollId(1),
            voter: Identity::loyal(3),
            damage: vec![],
            nominations: vec![],
            proof_valid: true,
        };
        assert_eq!(MsgKind::from(&msg).label(), msg.kind());
    }

    #[test]
    fn events_display_compactly() {
        let e = TraceEvent::PollOutcome {
            peer: 3,
            au: 1,
            poll: 99,
            conclusion: PollConclusion::Win,
            votes: 7,
        };
        assert_eq!(e.kind(), TraceEventKind::PollOutcome);
        let s = e.to_string();
        assert!(s.contains("poll99") && s.contains("win") && s.contains("7 votes"));
        let e = TraceEvent::MessageSend {
            from: 1,
            to: 2,
            kind: MsgKind::Poll,
            au: 0,
            poll: 5,
            suppressed: true,
        };
        assert!(e.to_string().contains("SUPPRESSED"));
        let e = TraceEvent::Compromise {
            peer: 4,
            corrupted: 6,
        };
        assert_eq!(e.kind(), TraceEventKind::Compromise);
        assert!(e.to_string().contains("compromise peer#4"));
        let e = TraceEvent::Cure {
            peer: 4,
            residual: 3,
        };
        assert_eq!(e.kind(), TraceEventKind::Cure);
        assert!(e.to_string().contains("3 blocks still damaged"));
        let e = TraceEvent::PoisonedRepair {
            peer: 2,
            au: 1,
            poll: 7,
            block: 9,
            server: 5,
        };
        assert_eq!(e.kind(), TraceEventKind::PoisonedRepair);
        assert!(e.to_string().contains("from peer#5"));
    }
}

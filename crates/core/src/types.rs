//! Shared identifier types.

/// A protocol-level identity (what reputation and admission control track).
///
/// Loyal peer `i` always presents identity `i`. The adversary has
/// "unconstrained identities" (§3.1): minions mint fresh identities from
/// [`Identity::MINION_BASE`] upward, decoupled from their network nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Identity(pub u64);

impl Identity {
    /// Identities at or above this value belong to adversary minions.
    pub const MINION_BASE: u64 = 1 << 32;

    /// The identity loyal peer `index` presents.
    pub fn loyal(index: u32) -> Identity {
        Identity(index as u64)
    }

    /// True if this identity is in the adversary's mint range.
    pub fn is_minion(self) -> bool {
        self.0 >= Self::MINION_BASE
    }

    /// The loyal peer index, if this is a loyal identity.
    pub fn loyal_index(self) -> Option<u32> {
        if self.is_minion() {
            None
        } else {
            Some(self.0 as u32)
        }
    }
}

impl std::fmt::Display for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_minion() {
            write!(f, "minion#{}", self.0 - Self::MINION_BASE)
        } else {
            write!(f, "peer#{}", self.0)
        }
    }
}

/// Uniquely identifies one poll across the whole run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PollId(pub u64);

impl std::fmt::Display for PollId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poll{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loyal_identities_roundtrip() {
        let id = Identity::loyal(42);
        assert!(!id.is_minion());
        assert_eq!(id.loyal_index(), Some(42));
        assert_eq!(id.to_string(), "peer#42");
    }

    #[test]
    fn minion_identities_detected() {
        let id = Identity(Identity::MINION_BASE + 7);
        assert!(id.is_minion());
        assert_eq!(id.loyal_index(), None);
        assert_eq!(id.to_string(), "minion#7");
    }
}

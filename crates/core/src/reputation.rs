//! First-hand reputation (§5.1).
//!
//! Each peer keeps, per AU, a *known-peers list* grading every identity it
//! has interacted with as `debt`, `even`, or `credit` according to the
//! balance of votes exchanged. Supplying a valid vote raises the supplier's
//! grade at the poller; receiving one lowers the poller's grade at the
//! voter. Misbehaviour (committing without supplying, or withholding the
//! evaluation receipt) drops straight to debt. Grades decay toward debt
//! over time.

use lockss_sim::{Duration, FxHashMap, SimTime};

use crate::types::Identity;

/// A first-hand reputation grade.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Grade {
    /// The peer has supplied fewer votes than it consumed.
    Debt,
    /// Balanced recent exchanges.
    Even,
    /// The peer has supplied more votes than it consumed.
    Credit,
}

impl Grade {
    /// One step up (saturating at credit).
    pub fn raised(self) -> Grade {
        match self {
            Grade::Debt => Grade::Even,
            Grade::Even | Grade::Credit => Grade::Credit,
        }
    }

    /// One step down (saturating at debt).
    pub fn lowered(self) -> Grade {
        match self {
            Grade::Credit => Grade::Even,
            Grade::Even | Grade::Debt => Grade::Debt,
        }
    }

    /// Lowered by `steps` (saturating).
    fn decayed(self, steps: u64) -> Grade {
        let mut g = self;
        for _ in 0..steps.min(2) {
            g = g.lowered();
        }
        g
    }
}

/// What the admission filter knows about an inviting identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Standing {
    /// Never interacted (and not pre-seeded).
    Unknown,
    /// Known with the (decay-adjusted) grade.
    Known(Grade),
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    grade: Grade,
    updated: SimTime,
}

/// A virtual "everyone in the founding population is known at even" rule,
/// standing in for the `peers × (peers-1)` explicit entries the world used
/// to materialize per AU at construction (gigabytes at 10k+ peers, and the
/// dominant cost of `World::new`). Observably equivalent: a loyal identity
/// below `bound` (other than the owner) reads as seeded at `grade` at time
/// `since`, decaying exactly like a real entry, until a real interaction
/// writes an explicit entry over it.
#[derive(Clone, Copy, Debug)]
struct PopulationDefault {
    /// Loyal indices `0..bound` are covered (the founding population);
    /// late joiners and minions are not.
    bound: u32,
    /// The owner's own loyal index, excluded (a peer never knew itself).
    except: u32,
    grade: Grade,
    since: SimTime,
}

/// The per-AU known-peers list of one peer.
#[derive(Clone, Debug, Default)]
pub struct KnownPeers {
    /// Lookup-only map (never iterated) of explicitly recorded standings,
    /// on the deterministic fast hasher. Holds only identities that have
    /// actually interacted (or been explicitly seeded); the steady-state
    /// founding population is covered by `population_default` instead.
    entries: FxHashMap<Identity, Entry>,
    /// The lazy founding-population rule, if installed.
    population_default: Option<PopulationDefault>,
}

impl KnownPeers {
    /// An empty list.
    pub fn new() -> KnownPeers {
        KnownPeers::default()
    }

    /// Seeds an identity at a grade (world initialization: the steady-state
    /// proxy starts loyal peers at `even`).
    pub fn seed(&mut self, id: Identity, grade: Grade, now: SimTime) {
        self.entries.insert(
            id,
            Entry {
                grade,
                updated: now,
            },
        );
    }

    /// Pre-sizes the table for `n` upcoming [`KnownPeers::seed`] calls, so
    /// bulk seeding pays one table build instead of a rehash cascade.
    pub fn reserve(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Installs the steady-state founding-population rule: every loyal
    /// identity with index below `bound` — except the owner `me` — reads as
    /// seeded at `grade` at time `at` without materializing an entry.
    ///
    /// This is the O(1) replacement for the O(population) explicit seeding
    /// loop of earlier world construction; real interactions still write
    /// explicit entries, which take precedence.
    pub fn assume_population(&mut self, bound: u32, me: Identity, grade: Grade, at: SimTime) {
        self.population_default = Some(PopulationDefault {
            bound,
            except: me.loyal_index().unwrap_or(u32::MAX),
            grade,
            since: at,
        });
    }

    fn decayed_at(grade: Grade, updated: SimTime, now: SimTime, decay: Duration) -> Grade {
        let steps = if decay.is_zero() {
            0
        } else {
            now.since(updated).as_millis() / decay.as_millis()
        };
        grade.decayed(steps)
    }

    /// The identity's standing at `now`, with decay applied (§5.1:
    /// "entries decay with time toward the debt grade").
    pub fn standing(&self, id: Identity, now: SimTime, decay: Duration) -> Standing {
        match self.entries.get(&id) {
            Some(e) => Standing::Known(Self::decayed_at(e.grade, e.updated, now, decay)),
            None => match self.population_default {
                Some(d)
                    if id
                        .loyal_index()
                        .is_some_and(|i| i < d.bound && i != d.except) =>
                {
                    Standing::Known(Self::decayed_at(d.grade, d.since, now, decay))
                }
                _ => Standing::Unknown,
            },
        }
    }

    /// Applies decay and then raises the identity's grade (it supplied a
    /// valid vote, §5.1). Unknown identities enter at `even` (first
    /// supplied vote raises from the implicit debt of a stranger).
    pub fn raise(&mut self, id: Identity, now: SimTime, decay: Duration) {
        let current = match self.standing(id, now, decay) {
            Standing::Unknown => Grade::Debt,
            Standing::Known(g) => g,
        };
        self.entries.insert(
            id,
            Entry {
                grade: current.raised(),
                updated: now,
            },
        );
    }

    /// Applies decay and then lowers the identity's grade (it consumed a
    /// vote we supplied).
    pub fn lower(&mut self, id: Identity, now: SimTime, decay: Duration) {
        let current = match self.standing(id, now, decay) {
            Standing::Unknown => Grade::Even,
            Standing::Known(g) => g,
        };
        self.entries.insert(
            id,
            Entry {
                grade: current.lowered(),
                updated: now,
            },
        );
    }

    /// Drops the identity straight to debt (misbehaviour, §5.1).
    pub fn penalize(&mut self, id: Identity, now: SimTime) {
        self.entries.insert(
            id,
            Entry {
                grade: Grade::Debt,
                updated: now,
            },
        );
    }

    /// Number of *materialized* entries (identities with an explicitly
    /// recorded standing; the lazy founding-population rule adds none).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry is materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECAY: Duration = Duration(Duration::DAY.0 * 180);

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    #[test]
    fn unknown_until_seen() {
        let kp = KnownPeers::new();
        assert_eq!(
            kp.standing(Identity::loyal(1), t(0), DECAY),
            Standing::Unknown
        );
    }

    #[test]
    fn raise_ladder() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(1);
        kp.raise(id, t(0), DECAY); // unknown -> even
        assert_eq!(kp.standing(id, t(0), DECAY), Standing::Known(Grade::Even));
        kp.raise(id, t(1), DECAY); // even -> credit
        assert_eq!(kp.standing(id, t(1), DECAY), Standing::Known(Grade::Credit));
        kp.raise(id, t(2), DECAY); // credit saturates
        assert_eq!(kp.standing(id, t(2), DECAY), Standing::Known(Grade::Credit));
    }

    #[test]
    fn lower_ladder() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(2);
        kp.seed(id, Grade::Credit, t(0));
        kp.lower(id, t(1), DECAY);
        assert_eq!(kp.standing(id, t(1), DECAY), Standing::Known(Grade::Even));
        kp.lower(id, t(2), DECAY);
        assert_eq!(kp.standing(id, t(2), DECAY), Standing::Known(Grade::Debt));
        kp.lower(id, t(3), DECAY);
        assert_eq!(kp.standing(id, t(3), DECAY), Standing::Known(Grade::Debt));
    }

    #[test]
    fn decay_steps_toward_debt() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(3);
        kp.seed(id, Grade::Credit, t(0));
        assert_eq!(
            kp.standing(id, t(179), DECAY),
            Standing::Known(Grade::Credit)
        );
        assert_eq!(kp.standing(id, t(181), DECAY), Standing::Known(Grade::Even));
        assert_eq!(kp.standing(id, t(361), DECAY), Standing::Known(Grade::Debt));
        // Decayed peers stay known (in-debt), never returning to unknown.
        assert_eq!(
            kp.standing(id, t(5000), DECAY),
            Standing::Known(Grade::Debt)
        );
    }

    #[test]
    fn raise_applies_decay_first() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(4);
        kp.seed(id, Grade::Credit, t(0));
        // After two decay periods the effective grade is debt; raising
        // yields even, not credit.
        kp.raise(id, t(365), DECAY);
        assert_eq!(kp.standing(id, t(365), DECAY), Standing::Known(Grade::Even));
    }

    #[test]
    fn penalize_is_immediate_debt() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(5);
        kp.seed(id, Grade::Credit, t(0));
        kp.penalize(id, t(1));
        assert_eq!(kp.standing(id, t(1), DECAY), Standing::Known(Grade::Debt));
    }

    /// The lazy founding-population rule must be observably identical to
    /// the dense explicit seeding it replaced: same standing for every
    /// covered identity at every probe time, through decay, raises, lowers,
    /// and penalties.
    #[test]
    fn population_default_matches_dense_seeding() {
        let me = Identity::loyal(3);
        let bound = 10u32;
        let mut dense = KnownPeers::new();
        for i in 0..bound {
            if Identity::loyal(i) != me {
                dense.seed(Identity::loyal(i), Grade::Even, t(0));
            }
        }
        let mut lazy = KnownPeers::new();
        lazy.assume_population(bound, me, Grade::Even, t(0));

        for probe_days in [0u64, 100, 200, 400, 1000] {
            for i in 0..bound + 3 {
                let id = Identity::loyal(i);
                assert_eq!(
                    dense.standing(id, t(probe_days), DECAY),
                    lazy.standing(id, t(probe_days), DECAY),
                    "peer {i} at day {probe_days}"
                );
            }
        }
        // Minions are unknown under both.
        let minion = Identity(Identity::MINION_BASE + 1);
        assert_eq!(lazy.standing(minion, t(1), DECAY), Standing::Unknown);
        // The owner never knew itself.
        assert_eq!(lazy.standing(me, t(1), DECAY), Standing::Unknown);

        // Interactions write through identically.
        for kp in [&mut dense, &mut lazy] {
            kp.raise(Identity::loyal(1), t(10), DECAY);
            kp.lower(Identity::loyal(2), t(20), DECAY);
            kp.penalize(Identity::loyal(4), t(30));
        }
        for i in 0..bound {
            let id = Identity::loyal(i);
            assert_eq!(
                dense.standing(id, t(40), DECAY),
                lazy.standing(id, t(40), DECAY),
                "after interactions, peer {i}"
            );
        }
        // And the lazy table only materialized the three touched entries.
        assert_eq!(lazy.len(), 3);
    }

    #[test]
    fn zero_decay_disables_decay() {
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(6);
        kp.seed(id, Grade::Credit, t(0));
        assert_eq!(
            kp.standing(id, t(10_000), Duration::ZERO),
            Standing::Known(Grade::Credit)
        );
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    const DECAY: Duration = Duration(Duration::DAY.0 * 30);

    /// Any sequence of raises/lowers/penalties keeps grades in the
    /// three-value lattice, and a penalty always lands on debt.
    #[test]
    fn grade_lattice_is_closed() {
        let mut rng = SimRng::seed_from_u64(0x7265_7001);
        for _ in 0..128 {
            let n_ops = 1 + rng.below(59);
            let mut kp = KnownPeers::new();
            let id = Identity::loyal(1);
            let mut t = SimTime::ZERO;
            for _ in 0..n_ops {
                let op = rng.below(4) as u8;
                t += Duration::DAY;
                match op {
                    0 => kp.raise(id, t, DECAY),
                    1 => kp.lower(id, t, DECAY),
                    2 => kp.penalize(id, t),
                    _ => {} // time passes
                }
                match kp.standing(id, t, DECAY) {
                    Standing::Unknown => {}
                    Standing::Known(g) => {
                        assert!(matches!(g, Grade::Debt | Grade::Even | Grade::Credit));
                        if op == 2 {
                            assert_eq!(g, Grade::Debt);
                        }
                    }
                }
            }
        }
    }

    /// Standing never *improves* with the passage of time alone.
    #[test]
    fn decay_is_monotone_nonincreasing() {
        let mut rng = SimRng::seed_from_u64(0x7265_7002);
        for _ in 0..256 {
            let days = rng.below(2000) as u64;
            let mut kp = KnownPeers::new();
            let id = Identity::loyal(2);
            kp.seed(id, Grade::Credit, SimTime::ZERO);
            let early = kp.standing(id, SimTime::ZERO, DECAY);
            let later = kp.standing(id, SimTime::ZERO + Duration::from_days(days), DECAY);
            let rank = |s: Standing| match s {
                Standing::Unknown => -1i32,
                Standing::Known(Grade::Debt) => 0,
                Standing::Known(Grade::Even) => 1,
                Standing::Known(Grade::Credit) => 2,
            };
            assert!(rank(later) <= rank(early));
        }
    }
}

//! Protocol and world configuration.

use lockss_effort::CostModel;
use lockss_sim::Duration;
use lockss_storage::AuSpec;

/// Tunable parameters of the audit/repair protocol and its defenses.
///
/// Defaults are the paper's §6.3 values where given, and documented
/// heuristics otherwise.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolConfig {
    /// Minimum inner-circle votes for a poll to count (§4.1; paper: 10).
    pub quorum: usize,
    /// Inner-circle invitees sampled per poll (paper: twice the quorum).
    pub inner_circle: usize,
    /// Landslide margin: at most this many disagreeing votes still count
    /// as landslide agreement (§6.3; paper: 3).
    pub max_disagree: usize,
    /// Mean inter-poll interval per AU (§4; paper: 3 months).
    pub poll_interval: Duration,
    /// Multiplicative jitter on the interval (±fraction).
    pub interval_jitter: f64,
    /// Fraction of the interval used as the vote-solicitation window.
    pub solicit_frac: f64,
    /// Refractory period: after admitting one unknown/in-debt invitation,
    /// auto-reject further unknown/in-debt invitations for this long
    /// (§6.3; paper: 1 day). Also the per-known-peer admission rate limit.
    pub refractory: Duration,
    /// Probability of dropping an invitation from an unknown identity
    /// (§6.3; paper: 0.90).
    pub drop_unknown: f64,
    /// Probability of dropping an invitation from an in-debt identity
    /// (§6.3; paper: 0.80).
    pub drop_debt: f64,
    /// Reputation grades decay one step toward debt per this period (§5.1
    /// describes decay without a constant; heuristic: two inter-poll
    /// intervals).
    pub grade_decay: Duration,
    /// Reference-list size at world start (steady-state proxy).
    pub reflist_initial: usize,
    /// Reference-list size cap.
    pub reflist_cap: usize,
    /// Static friends per peer (operator-maintained, §4.1).
    pub friends: usize,
    /// Friends inserted into the reference list at each poll conclusion.
    pub friend_bias: usize,
    /// Reference-list entries a voter nominates in each Vote (§4.2).
    pub nominations: usize,
    /// Probability that a nominated identity is treated as an introduction
    /// rather than an outer-circle candidate (§5.1: random partition).
    pub introduction_frac: f64,
    /// Maximum outstanding introductions remembered per AU (§5.1: capped).
    pub max_introductions: usize,
    /// Outer-circle voters solicited per poll (§4.2).
    pub outer_circle: usize,
    /// Probability of requesting one frivolous repair per poll (§4.3).
    pub frivolous_repair_prob: f64,
    /// Repairs a committed voter must serve per poll before penalizing
    /// (§4.3: "a small number").
    pub max_repairs_served: u32,
    /// How long a poller waits for a PollAck before treating the invitee
    /// as unresponsive and retrying later.
    pub invite_timeout: Duration,
    /// Maximum solicitation attempts per invitee per poll.
    pub max_invite_attempts: u32,
    /// How long a voter holds a reservation waiting for the PollProof.
    pub proof_timeout: Duration,
    /// Slack after poll conclusion before a missing receipt penalizes the
    /// poller.
    pub receipt_slack: Duration,
    /// Ablation switches: disable individual defenses to measure their
    /// contribution (DESIGN.md §8). All default to fully-enabled.
    pub ablation: Ablation,
    /// §9 adaptive behaviour: "loyal peers could modulate the probability
    /// of acceptance of a poll request according to their recent busyness.
    /// The effect would be to raise the marginal effort required to
    /// increase the loyal peer's busyness as the attack effort increases."
    /// Off by default (the paper leaves it as future work).
    pub adaptive_acceptance: bool,
    /// Busyness horizon for adaptive acceptance: refuse with probability
    /// equal to the committed CPU fraction over this window ahead.
    pub adaptive_window: Duration,
}

/// Defense ablation switches (all `false` = the full protocol).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ablation {
    /// Solicit all votes at once at poll start instead of individually at
    /// randomized times (§5.2 desynchronization off).
    pub synchronous_solicitation: bool,
    /// Never enter refractory periods (§5.1 admission rate limit off).
    pub no_refractory: bool,
    /// Ignore introductions (§5.1 discovery bypass off).
    pub no_introductions: bool,
    /// Treat every known identity as `even` (first-hand reputation off;
    /// random drops then apply only to unknowns).
    pub no_reputation: bool,
    /// Skip effort proofs entirely: requests cost the sender nothing
    /// (§5.1 effort balancing off; the paper's pre-hardening protocol).
    pub no_effort_balancing: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            quorum: 10,
            inner_circle: 20,
            max_disagree: 3,
            poll_interval: Duration::MONTH * 3,
            interval_jitter: 0.1,
            solicit_frac: 0.7,
            refractory: Duration::DAY,
            drop_unknown: 0.90,
            drop_debt: 0.80,
            grade_decay: Duration::MONTH * 6,
            reflist_initial: 40,
            reflist_cap: 60,
            friends: 10,
            friend_bias: 2,
            nominations: 8,
            introduction_frac: 0.5,
            max_introductions: 8,
            outer_circle: 10,
            frivolous_repair_prob: 0.1,
            max_repairs_served: 4,
            invite_timeout: Duration::HOUR,
            max_invite_attempts: 3,
            proof_timeout: Duration::HOUR * 2,
            receipt_slack: Duration::DAY,
            ablation: Ablation::default(),
            adaptive_acceptance: false,
            adaptive_window: Duration::DAY,
        }
    }
}

impl ProtocolConfig {
    /// The solicitation window length.
    pub fn solicit_window(&self) -> Duration {
        self.poll_interval.mul_f64(self.solicit_frac)
    }

    /// Basic consistency checks; call after hand-editing a config.
    pub fn validate(&self) -> Result<(), String> {
        if self.quorum == 0 {
            return Err("quorum must be positive".into());
        }
        if self.inner_circle < self.quorum {
            return Err("inner circle must be at least the quorum".into());
        }
        if self.max_disagree >= self.quorum {
            return Err("landslide margin must be below the quorum".into());
        }
        if !(0.0..=1.0).contains(&self.drop_unknown) || !(0.0..=1.0).contains(&self.drop_debt) {
            return Err("drop probabilities must be in [0,1]".into());
        }
        if self.drop_unknown < self.drop_debt {
            return Err(
                "unknown-peer drops must be at least as aggressive as in-debt drops \
                 (whitewashing defense, §5.1)"
                    .into(),
            );
        }
        if !(0.0..1.0).contains(&self.solicit_frac) || self.solicit_frac == 0.0 {
            return Err("solicitation fraction must be in (0,1)".into());
        }
        if self.poll_interval.is_zero() || self.refractory.is_zero() {
            return Err("intervals must be positive".into());
        }
        Ok(())
    }
}

/// Full description of a simulated world.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldConfig {
    /// Loyal peer population (paper: 100).
    pub n_peers: usize,
    /// AUs preserved by every peer (paper: 50 per layer, up to 600).
    pub n_aus: usize,
    /// Archival unit geometry.
    pub au_spec: AuSpec,
    /// Mean time between storage damage events per disk, in years
    /// (paper: 1–5).
    pub mtbf_years: f64,
    /// Protocol parameters.
    pub protocol: ProtocolConfig,
    /// Effort cost model.
    pub cost: CostModel,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Optional weighted bandwidth-class mix over
    /// `lockss_net::BANDWIDTH_CLASSES_BPS` (low → high). `None` keeps the
    /// paper's uniform three-way split; the production-scale worlds use a
    /// skewed mix drawn through an O(1) alias table.
    pub link_mix: Option<[f64; 3]>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        let au_spec = AuSpec::default();
        WorldConfig {
            n_peers: 100,
            n_aus: 50,
            au_spec,
            mtbf_years: 5.0,
            protocol: ProtocolConfig::default(),
            cost: CostModel::default().with_au_bytes(au_spec.size_bytes),
            seed: 1,
            link_mix: None,
        }
    }
}

impl WorldConfig {
    /// Total replicas in the system.
    pub fn total_replicas(&self) -> u64 {
        (self.n_peers * self.n_aus) as u64
    }

    /// Consistency checks across the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.protocol.validate()?;
        if self.n_peers < self.protocol.inner_circle + 1 {
            return Err("population must exceed the inner circle".into());
        }
        if self.n_aus == 0 {
            return Err("need at least one AU".into());
        }
        if self.mtbf_years <= 0.0 {
            return Err("mtbf must be positive".into());
        }
        if self.cost.au_bytes != self.au_spec.size_bytes {
            return Err("cost model AU size must match the AU spec".into());
        }
        if self.cost.block_bytes != self.au_spec.block_bytes {
            return Err("cost model block size must match the AU spec".into());
        }
        if let Some(mix) = self.link_mix {
            if mix.iter().any(|w| !w.is_finite() || *w < 0.0) || mix.iter().sum::<f64>() <= 0.0 {
                return Err("link mix weights must be non-negative with a positive sum".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ProtocolConfig::default().validate().expect("protocol");
        WorldConfig::default().validate().expect("world");
    }

    #[test]
    fn paper_parameters_are_the_defaults() {
        let p = ProtocolConfig::default();
        assert_eq!(p.quorum, 10);
        assert_eq!(p.inner_circle, 2 * p.quorum);
        assert_eq!(p.max_disagree, 3);
        assert_eq!(p.poll_interval, Duration::MONTH * 3);
        assert_eq!(p.refractory, Duration::DAY);
        assert!((p.drop_unknown - 0.9).abs() < 1e-12);
        assert!((p.drop_debt - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let p = ProtocolConfig {
            inner_circle: 5,
            ..ProtocolConfig::default()
        };
        assert!(p.validate().is_err());

        let p = ProtocolConfig {
            max_disagree: 10,
            ..ProtocolConfig::default()
        };
        assert!(p.validate().is_err());

        let p = ProtocolConfig {
            drop_unknown: 0.5, // below drop_debt: invites whitewashing
            ..ProtocolConfig::default()
        };
        assert!(p.validate().is_err());

        let w = WorldConfig {
            n_peers: 5,
            ..WorldConfig::default()
        };
        assert!(w.validate().is_err());

        let mut w = WorldConfig::default();
        w.cost = w.cost.with_au_bytes(123);
        assert!(w.validate().is_err());
    }

    #[test]
    fn solicit_window_is_fraction_of_interval() {
        let p = ProtocolConfig::default();
        let w = p.solicit_window();
        assert!(w < p.poll_interval);
        assert!(w > p.poll_interval.mul_f64(0.5));
    }

    #[test]
    fn total_replicas() {
        let w = WorldConfig::default();
        assert_eq!(w.total_replicas(), 5000);
    }
}

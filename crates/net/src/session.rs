//! A toy authenticated session channel.
//!
//! The paper runs every poll's messages over a TLS session keyed by an
//! anonymous Diffie–Hellman exchange (§4.1); the cryptography only matters
//! to the evaluation through its *cost*, which `lockss-effort` charges. This
//! module provides a working stand-in so "real mode" tests and examples can
//! exercise an actual keyed channel: a hash-based key agreement commitment
//! (not secure key exchange — the simulation threat model never attacks the
//! channel itself) and HMAC-SHA-256 message authentication with replay
//! protection.

use lockss_crypto::hmac::{hmac_sha256, verify_hmac};
use lockss_crypto::sha256::Sha256;

/// One endpoint's ephemeral contribution to a session key.
#[derive(Clone, Copy, Debug)]
pub struct KeyShare {
    secret: u64,
}

impl KeyShare {
    /// Creates a share from an ephemeral secret.
    pub fn new(secret: u64) -> KeyShare {
        KeyShare { secret }
    }

    /// The public commitment sent to the other endpoint.
    pub fn public(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"lockss-session-share");
        h.update(&self.secret.to_le_bytes());
        h.finalize()
    }
}

/// A symmetric session established between two endpoints.
///
/// Both sides derive the same key from the pair of (secret, peer public)
/// values; message tags chain a monotone sequence number for replay
/// protection.
pub struct Session {
    key: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
}

impl Session {
    /// Derives the session from our secret share and the peer's public
    /// commitment. The derivation is symmetric in the two public values, so
    /// both endpoints arrive at the same key.
    pub fn establish(ours: &KeyShare, our_public: &[u8; 32], theirs: &[u8; 32]) -> Session {
        // Order the public commitments so both sides hash identical input.
        let (lo, hi) = if our_public <= theirs {
            (our_public, theirs)
        } else {
            (theirs, our_public)
        };
        let mut h = Sha256::new();
        h.update(b"lockss-session-key");
        h.update(lo);
        h.update(hi);
        // Binding in the secret makes the two directions of a session with
        // a given peer distinct from sessions with other peers; both sides
        // must mix the *same* secret material, which in a real anonymous DH
        // would be the shared group element. Here the simulation trusts the
        // channel, so we mix a commitment-derived value instead.
        h.update(&ours.secret.to_le_bytes());
        Session {
            key: h.finalize(),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Establishes the two ends of a session directly from a shared secret
    /// (what anonymous DH would output); the convenient constructor for
    /// tests and the simulator.
    pub fn pair(shared_secret: u64) -> (Session, Session) {
        let share = KeyShare::new(shared_secret);
        let public = share.public();
        let a = Session::establish(&share, &public, &public);
        let b = Session::establish(&share, &public, &public);
        (a, b)
    }

    /// Tags an outgoing message, consuming one sequence number.
    pub fn seal(&mut self, payload: &[u8]) -> SealedMessage {
        let seq = self.send_seq;
        self.send_seq += 1;
        let tag = hmac_sha256(&self.key, &frame(seq, payload));
        SealedMessage { seq, tag }
    }

    /// Verifies an incoming message tag; accepts only the next expected
    /// sequence number (strict FIFO, which TCP-backed TLS provides).
    pub fn open(&mut self, payload: &[u8], sealed: &SealedMessage) -> bool {
        if sealed.seq != self.recv_seq {
            return false;
        }
        if !verify_hmac(&self.key, &frame(sealed.seq, payload), &sealed.tag) {
            return false;
        }
        self.recv_seq += 1;
        true
    }
}

/// The authentication envelope accompanying a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealedMessage {
    pub seq: u64,
    pub tag: [u8; 32],
}

fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let (mut a, mut b) = Session::pair(1234);
        let sealed = a.seal(b"vote solicitation");
        assert!(b.open(b"vote solicitation", &sealed));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut a, mut b) = Session::pair(1);
        let sealed = a.seal(b"hello");
        assert!(!b.open(b"hellO", &sealed));
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = Session::pair(1);
        let sealed = a.seal(b"msg");
        assert!(b.open(b"msg", &sealed));
        assert!(!b.open(b"msg", &sealed), "replay must fail");
    }

    #[test]
    fn out_of_order_rejected() {
        let (mut a, mut b) = Session::pair(1);
        let first = a.seal(b"one");
        let second = a.seal(b"two");
        assert!(!b.open(b"two", &second));
        assert!(b.open(b"one", &first));
        assert!(b.open(b"two", &second));
    }

    #[test]
    fn cross_session_tags_rejected() {
        let (mut a, _) = Session::pair(1);
        let (_, mut d) = Session::pair(2);
        let sealed = a.seal(b"msg");
        assert!(!d.open(b"msg", &sealed));
    }

    #[test]
    fn sequence_numbers_advance() {
        let (mut a, mut b) = Session::pair(1);
        for i in 0..10u64 {
            let sealed = a.seal(b"m");
            assert_eq!(sealed.seq, i);
            assert!(b.open(b"m", &sealed));
        }
    }
}

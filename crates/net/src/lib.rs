//! Flow-level simulated network (the paper's Narses network model).
//!
//! The paper deliberately chose "a simplistic network model that takes into
//! account network delays but not congestion, except for the side-effects of
//! artificial congestion used by a pipe stoppage adversary" (§6.2). This
//! crate implements exactly that:
//!
//! - each node attaches to the network through a link with a bandwidth drawn
//!   uniformly from {1.5, 10, 100} Mbps and a latency drawn uniformly from
//!   [1, 30] ms;
//! - a message of `n` bytes from `a` to `b` arrives after
//!   `latency(a) + latency(b) + n / min(bw(a), bw(b))`;
//! - **pipe stoppage** suppresses all communication to and from a set of
//!   victim nodes: sends fail at origination and in-flight checks let the
//!   caller drop deliveries that would land during stoppage;
//! - per-node traffic accounting feeds the metrics crate.
//!
//! The crate also provides the [`session`] module: a toy authenticated
//! channel standing in for the paper's TLS-over-anonymous-Diffie-Hellman
//! sessions, whose cost shows up in the effort model.

pub mod session;
pub mod topology;

pub use topology::{LinkSpec, Network, NodeId, TrafficStats};

//! Node links, delay computation, pipe stoppage, and traffic accounting.

use lockss_sim::{Duration, SimRng};

/// Identifies a node (loyal peer or adversary minion) on the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node's attachment link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency to the network core.
    pub latency: Duration,
}

/// The paper's three access-link bandwidth classes (§6.2).
pub const BANDWIDTH_CLASSES_BPS: [u64; 3] = [1_500_000, 10_000_000, 100_000_000];

impl LinkSpec {
    /// Draws a link uniformly from the paper's distribution: bandwidth from
    /// {1.5, 10, 100} Mbps, latency from [1, 30] ms.
    pub fn sample(rng: &mut SimRng) -> LinkSpec {
        let bandwidth_bps = BANDWIDTH_CLASSES_BPS[rng.below(BANDWIDTH_CLASSES_BPS.len())];
        let latency = rng.duration_between(Duration::from_millis(1), Duration::from_millis(30));
        LinkSpec {
            bandwidth_bps,
            latency,
        }
    }
}

/// Cumulative per-node traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    pub messages_sent: u64,
    pub messages_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Sends that failed because an endpoint was stopped.
    pub suppressed: u64,
}

struct Node {
    link: LinkSpec,
    /// Suppression count: how many attackers currently pipe-stop this
    /// node. A count, not a flag, so overlapping suppressors (e.g. two
    /// composed pipe stoppages, or a stoppage plus a churn storm) cannot
    /// clobber each other's state on release.
    stopped: u32,
    traffic: TrafficStats,
}

/// The simulated network.
pub struct Network {
    nodes: Vec<Node>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network { nodes: Vec::new() }
    }

    /// Adds a node with the given link, returning its id.
    pub fn add_node(&mut self, link: LinkSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            link,
            stopped: 0,
            traffic: TrafficStats::default(),
        });
        id
    }

    /// Adds `n` nodes with links sampled from the paper's distribution.
    pub fn add_sampled_nodes(&mut self, n: usize, rng: &mut SimRng) -> Vec<NodeId> {
        (0..n)
            .map(|_| self.add_node(LinkSpec::sample(rng)))
            .collect()
    }

    /// Adds `n` nodes whose bandwidth class is drawn from a weighted mix
    /// over [`BANDWIDTH_CLASSES_BPS`] (latency stays uniform in [1, 30] ms).
    ///
    /// Production-scale worlds use this to model realistic skew — most
    /// libraries on modest access links, a few well-provisioned — instead
    /// of the paper's uniform three-way split. Draws go through an O(1)
    /// alias table, so provisioning 100k nodes costs 100k draws, not a CDF
    /// scan per node.
    pub fn add_weighted_nodes(
        &mut self,
        n: usize,
        class_weights: &[f64; 3],
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let table = lockss_sim::AliasTable::new(class_weights);
        (0..n)
            .map(|_| {
                let bandwidth_bps = BANDWIDTH_CLASSES_BPS[table.draw(rng)];
                let latency =
                    rng.duration_between(Duration::from_millis(1), Duration::from_millis(30));
                self.add_node(LinkSpec {
                    bandwidth_bps,
                    latency,
                })
            })
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The link of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not created by this network.
    pub fn link(&self, node: NodeId) -> LinkSpec {
        self.nodes[node.index()].link
    }

    /// Marks `node` as pipe-stopped (victim of a DoS adversary) or
    /// releases one suppression. Suppression is *counted*: each
    /// `set_stopped(node, true)` must be balanced by one
    /// `set_stopped(node, false)`, and the node stays stopped while any
    /// suppressor remains — overlapping attacks (composite campaigns)
    /// cannot un-stop each other's victims. Releasing below zero
    /// saturates.
    pub fn set_stopped(&mut self, node: NodeId, stopped: bool) {
        let count = &mut self.nodes[node.index()].stopped;
        if stopped {
            *count += 1;
        } else {
            *count = count.saturating_sub(1);
        }
    }

    /// True if `node` is currently pipe-stopped (by anyone).
    pub fn is_stopped(&self, node: NodeId) -> bool {
        self.nodes[node.index()].stopped > 0
    }

    /// True if `a` and `b` can currently exchange traffic.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        !self.is_stopped(a) && !self.is_stopped(b) && a != b
    }

    /// Pure delay computation: how long `bytes` take from `from` to `to`,
    /// ignoring stoppage.
    pub fn transfer_delay(&self, from: NodeId, to: NodeId, bytes: u64) -> Duration {
        let f = &self.nodes[from.index()].link;
        let t = &self.nodes[to.index()].link;
        let bw = f.bandwidth_bps.min(t.bandwidth_bps);
        let serialization = Duration::from_secs_f64(bytes as f64 * 8.0 / bw as f64);
        f.latency + t.latency + serialization
    }

    /// One network round trip between `a` and `b` (no payload).
    pub fn rtt(&self, a: NodeId, b: NodeId) -> Duration {
        let la = self.nodes[a.index()].link.latency;
        let lb = self.nodes[b.index()].link.latency;
        (la + lb) * 2
    }

    /// Attempts to send `bytes` from `from` to `to`: returns the delivery
    /// delay, or `None` (and counts a suppression) if either endpoint is
    /// pipe-stopped or the destination is the source.
    ///
    /// The caller is responsible for also consulting [`Self::reachable`] at
    /// delivery time if it wants in-flight messages killed by a stoppage
    /// that begins mid-transfer (the experiments do).
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64) -> Option<Duration> {
        if !self.reachable(from, to) {
            self.nodes[from.index()].traffic.suppressed += 1;
            return None;
        }
        let delay = self.transfer_delay(from, to, bytes);
        {
            let f = &mut self.nodes[from.index()].traffic;
            f.messages_sent += 1;
            f.bytes_sent += bytes;
        }
        {
            let t = &mut self.nodes[to.index()].traffic;
            t.messages_received += 1;
            t.bytes_received += bytes;
        }
        Some(delay)
    }

    /// Traffic counters for `node`.
    pub fn traffic(&self, node: NodeId) -> TrafficStats {
        self.nodes[node.index()].traffic
    }

    /// Sum of traffic counters over all nodes.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for n in &self.nodes {
            total.messages_sent += n.traffic.messages_sent;
            total.messages_received += n.traffic.messages_received;
            total.bytes_sent += n.traffic.bytes_sent;
            total.bytes_received += n.traffic.bytes_received;
            total.suppressed += n.traffic.suppressed;
        }
        total
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net(bw_a: u64, lat_a: u64, bw_b: u64, lat_b: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(LinkSpec {
            bandwidth_bps: bw_a,
            latency: Duration::from_millis(lat_a),
        });
        let b = net.add_node(LinkSpec {
            bandwidth_bps: bw_b,
            latency: Duration::from_millis(lat_b),
        });
        (net, a, b)
    }

    #[test]
    fn delay_is_latency_plus_serialization_at_bottleneck() {
        let (net, a, b) = two_node_net(1_500_000, 10, 100_000_000, 5);
        // 1.5 Mbps bottleneck: 1 MB = 8e6 bits / 1.5e6 bps ≈ 5333 ms.
        let d = net.transfer_delay(a, b, 1_000_000);
        let expect = Duration::from_millis(10 + 5 + 5333);
        assert_eq!(d, expect);
    }

    #[test]
    fn tiny_message_is_latency_dominated() {
        let (net, a, b) = two_node_net(100_000_000, 1, 100_000_000, 30);
        let d = net.transfer_delay(a, b, 100);
        // 800 bits / 1e8 bps = 8 microseconds, rounds to 0 ms.
        assert_eq!(d, Duration::from_millis(31));
    }

    #[test]
    fn send_counts_traffic_both_sides() {
        let (mut net, a, b) = two_node_net(10_000_000, 1, 10_000_000, 1);
        assert!(net.send(a, b, 500).is_some());
        assert_eq!(net.traffic(a).messages_sent, 1);
        assert_eq!(net.traffic(a).bytes_sent, 500);
        assert_eq!(net.traffic(b).messages_received, 1);
        assert_eq!(net.traffic(b).bytes_received, 500);
        assert_eq!(net.traffic(b).messages_sent, 0);
    }

    #[test]
    fn stoppage_suppresses_both_directions() {
        let (mut net, a, b) = two_node_net(10_000_000, 1, 10_000_000, 1);
        net.set_stopped(b, true);
        assert!(net.send(a, b, 1).is_none());
        assert!(net.send(b, a, 1).is_none());
        assert_eq!(net.traffic(a).suppressed, 1);
        assert_eq!(net.traffic(b).suppressed, 1);
        assert!(!net.reachable(a, b));
        net.set_stopped(b, false);
        assert!(net.send(a, b, 1).is_some());
        assert!(net.reachable(a, b));
    }

    #[test]
    fn overlapping_suppressions_are_counted() {
        let (mut net, a, b) = two_node_net(10_000_000, 1, 10_000_000, 1);
        // Two independent attackers stop the same node...
        net.set_stopped(b, true);
        net.set_stopped(b, true);
        // ...one releasing must not un-stop it for the other.
        net.set_stopped(b, false);
        assert!(net.is_stopped(b));
        assert!(!net.reachable(a, b));
        net.set_stopped(b, false);
        assert!(!net.is_stopped(b));
        assert!(net.reachable(a, b));
        // Releasing below zero saturates.
        net.set_stopped(b, false);
        assert!(!net.is_stopped(b));
    }

    #[test]
    fn self_send_is_rejected() {
        let (mut net, a, _) = two_node_net(10_000_000, 1, 10_000_000, 1);
        assert!(net.send(a, a, 1).is_none());
    }

    #[test]
    fn sampled_links_are_in_the_paper_distribution() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut net = Network::new();
        let ids = net.add_sampled_nodes(200, &mut rng);
        assert_eq!(ids.len(), 200);
        let mut seen = [false; 3];
        for id in ids {
            let l = net.link(id);
            let class = BANDWIDTH_CLASSES_BPS
                .iter()
                .position(|&b| b == l.bandwidth_bps)
                .expect("bandwidth must be one of the paper's classes");
            seen[class] = true;
            assert!(l.latency >= Duration::from_millis(1));
            assert!(l.latency <= Duration::from_millis(30));
        }
        assert!(seen.iter().all(|&s| s), "all classes should appear");
    }

    #[test]
    fn weighted_nodes_follow_the_mix() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut net = Network::new();
        let ids = net.add_weighted_nodes(20_000, &[0.6, 0.3, 0.1], &mut rng);
        let mut counts = [0usize; 3];
        for id in ids {
            let l = net.link(id);
            let class = BANDWIDTH_CLASSES_BPS
                .iter()
                .position(|&b| b == l.bandwidth_bps)
                .expect("bandwidth in the class set");
            counts[class] += 1;
            assert!(l.latency >= Duration::from_millis(1));
            assert!(l.latency <= Duration::from_millis(30));
        }
        let frac = |c: usize| c as f64 / 20_000.0;
        assert!((frac(counts[0]) - 0.6).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[1]) - 0.3).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[2]) - 0.1).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn rtt_is_double_sum_of_latencies() {
        let (net, a, b) = two_node_net(10_000_000, 10, 10_000_000, 20);
        assert_eq!(net.rtt(a, b), Duration::from_millis(60));
    }

    #[test]
    fn total_traffic_aggregates() {
        let (mut net, a, b) = two_node_net(10_000_000, 1, 10_000_000, 1);
        net.send(a, b, 100);
        net.send(b, a, 50);
        let t = net.total_traffic();
        assert_eq!(t.messages_sent, 2);
        assert_eq!(t.messages_received, 2);
        assert_eq!(t.bytes_sent, 150);
        assert_eq!(t.bytes_received, 150);
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    /// Transfer delay is monotone in payload size and bounded below by
    /// the endpoint latencies.
    #[test]
    fn delay_monotone_in_bytes() {
        let mut rng = SimRng::seed_from_u64(0x6e65_7401);
        for _ in 0..256 {
            let bw_a = *rng.choose(&BANDWIDTH_CLASSES_BPS).unwrap();
            let bw_b = *rng.choose(&BANDWIDTH_CLASSES_BPS).unwrap();
            let lat_a = 1 + rng.below(30) as u64;
            let lat_b = 1 + rng.below(30) as u64;
            let small = rng.below(100_000) as u64;
            let extra = 1 + rng.below(10_000_000) as u64;
            let mut net = Network::new();
            let a = net.add_node(LinkSpec {
                bandwidth_bps: bw_a,
                latency: Duration::from_millis(lat_a),
            });
            let b = net.add_node(LinkSpec {
                bandwidth_bps: bw_b,
                latency: Duration::from_millis(lat_b),
            });
            let d_small = net.transfer_delay(a, b, small);
            let d_big = net.transfer_delay(a, b, small + extra);
            assert!(d_big >= d_small);
            assert!(d_small >= Duration::from_millis(lat_a + lat_b));
        }
    }

    /// Delay is symmetric in direction.
    #[test]
    fn delay_symmetric() {
        let mut rng = SimRng::seed_from_u64(0x6e65_7402);
        for _ in 0..256 {
            let lat_a = 1 + rng.below(30) as u64;
            let lat_b = 1 + rng.below(30) as u64;
            let bytes = rng.below(5_000_000) as u64;
            let mut net = Network::new();
            let a = net.add_node(LinkSpec {
                bandwidth_bps: 10_000_000,
                latency: Duration::from_millis(lat_a),
            });
            let b = net.add_node(LinkSpec {
                bandwidth_bps: 1_500_000,
                latency: Duration::from_millis(lat_b),
            });
            assert_eq!(
                net.transfer_delay(a, b, bytes),
                net.transfer_delay(b, a, bytes)
            );
        }
    }
}

//! The pipe-stoppage (network-level DoS) adversary (§7.2).
//!
//! "Each attack consists of a period of pipe stoppage, which lasts between
//! 1 and 180 days, followed by a 30-day recuperation period during which
//! all communication is restored; this pattern is repeated for the entire
//! experiment, affecting a different random subset of the population in
//! each iteration."
//!
//! The attack is *effortless*: it costs the adversary no measurable
//! computational effort (§3.1), so the cost-ratio metric is undefined for
//! it and the paper reports none.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, World};
use lockss_net::NodeId;
use lockss_sim::{Duration, Engine};

const TAG_START: u64 = 0;
const TAG_END: u64 = 1;

/// Repeated pipe-stoppage attack.
pub struct PipeStoppage {
    /// Fraction of the loyal population suppressed each cycle (0.1–1.0).
    pub coverage: f64,
    /// Stoppage length per cycle.
    pub attack_len: Duration,
    /// Recuperation between cycles (paper: 30 days).
    pub recuperation: Duration,
    current_victims: Vec<NodeId>,
}

impl PipeStoppage {
    /// Creates the attack with the paper's 30-day recuperation.
    pub fn new(coverage: f64, attack_days: u64) -> PipeStoppage {
        PipeStoppage {
            coverage: coverage.clamp(0.0, 1.0),
            attack_len: Duration::from_days(attack_days),
            recuperation: Duration::from_days(30),
            current_victims: Vec::new(),
        }
    }

    /// Victims suppressed per cycle.
    pub fn victims_per_cycle(&self, n_loyal: usize) -> usize {
        ((n_loyal as f64) * self.coverage).round() as usize
    }

    fn start_cycle(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let n = world.n_loyal();
        let k = self.victims_per_cycle(n);
        let chosen = world.rng.sample_indices(n, k);
        self.current_victims = chosen.iter().map(|&i| world.peers.node(i)).collect();
        for node in &self.current_victims {
            world.net.set_stopped(*node, true);
        }
        world.note_adversary_action(eng, "pipe-stoppage/stop", self.current_victims.len() as u64);
        schedule_adversary_timer(world, eng, self.attack_len, TAG_END);
    }

    fn end_cycle(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let restored = self.current_victims.len() as u64;
        for node in self.current_victims.drain(..) {
            world.net.set_stopped(node, false);
        }
        world.note_adversary_action(eng, "pipe-stoppage/restore", restored);
        schedule_adversary_timer(world, eng, self.recuperation, TAG_START);
    }
}

impl Adversary for PipeStoppage {
    fn name(&self) -> &'static str {
        "pipe-stoppage"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.start_cycle(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag {
            TAG_START => self.start_cycle(world, eng),
            TAG_END => self.end_cycle(world, eng),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_count_rounds() {
        let a = PipeStoppage::new(0.4, 10);
        assert_eq!(a.victims_per_cycle(100), 40);
        let b = PipeStoppage::new(1.0, 10);
        assert_eq!(b.victims_per_cycle(100), 100);
        let c = PipeStoppage::new(0.0, 10);
        assert_eq!(c.victims_per_cycle(100), 0);
    }

    #[test]
    fn coverage_is_clamped() {
        let a = PipeStoppage::new(7.0, 10);
        assert!((a.coverage - 1.0).abs() < 1e-12);
    }
}

//! The vote-flood adversary (§5.1).
//!
//! "A vote flood adversary would seek to supply as many bogus votes as
//! possible hoping to exhaust loyal pollers' resources in useless but
//! expensive proofs of invalidity. ... The vote flood adversary is
//! hamstrung by the fact that votes can be supplied only in response to an
//! invitation by the putative victim poller, and pollers solicit votes at
//! a fixed rate. Unsolicited votes are ignored."
//!
//! This strategy floods every loyal peer with unsolicited bogus votes at a
//! configurable rate. With insider information the adversary even uses
//! *live poll ids* (the worst case for the victim); the defense is that a
//! vote from an identity the poller never invited is discarded before any
//! hashing happens, so the flood costs the victims nothing but bandwidth.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, Identity, Message, World};
use lockss_net::NodeId;
use lockss_sim::{Duration, Engine};
use lockss_storage::AuId;

const TAG_WAVE: u64 = 0;

/// Unsolicited bogus-vote flood.
pub struct VoteFlood {
    /// Bogus votes per victim per wave.
    pub votes_per_wave: u32,
    /// Time between waves.
    pub wave_interval: Duration,
    minions: Vec<NodeId>,
    next_identity: u64,
    /// Votes sent (diagnostics).
    pub votes_sent: u64,
}

impl VoteFlood {
    /// A flood of `votes_per_wave` bogus votes per victim every
    /// `wave_interval`.
    pub fn new(votes_per_wave: u32, wave_interval: Duration) -> VoteFlood {
        VoteFlood {
            votes_per_wave,
            wave_interval,
            minions: Vec::new(),
            next_identity: Identity::MINION_BASE + (1 << 30),
            votes_sent: 0,
        }
    }

    fn wave(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let n = world.n_loyal();
        let n_aus = world.cfg.n_aus as u32;
        world.note_adversary_action(
            eng,
            "vote-flood/wave",
            n as u64 * u64::from(self.votes_per_wave),
        );
        for victim in 0..n {
            // Insider information: target the victim's *live* polls where
            // they exist, otherwise invent ids — either way the votes are
            // unsolicited and must be ignored for free.
            for k in 0..self.votes_per_wave {
                let au = AuId((victim as u32 + k) % n_aus);
                let poll = world
                    .peers
                    .au(victim, au.index())
                    .poll
                    .as_ref()
                    .map(|p| p.id)
                    .unwrap_or(lockss_core::PollId(u64::MAX - k as u64));
                let identity = Identity(self.next_identity);
                self.next_identity += 1;
                let minion = self.minions[(victim + k as usize) % self.minions.len()];
                let to = world.peers.node(victim);
                self.votes_sent += 1;
                world.send_message(
                    eng,
                    minion,
                    to,
                    Message::Vote {
                        au,
                        poll,
                        voter: identity,
                        damage: Vec::new(),
                        nominations: Vec::new(),
                        proof_valid: false,
                    },
                );
            }
        }
        schedule_adversary_timer(world, eng, self.wave_interval, TAG_WAVE);
    }
}

impl Adversary for VoteFlood {
    fn name(&self) -> &'static str {
        "vote-flood"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.minions = world.add_minions(8);
        self.wave(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        if tag == TAG_WAVE {
            self.wave(world, eng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let v = VoteFlood::new(5, Duration::HOUR);
        assert_eq!(v.votes_per_wave, 5);
        assert_eq!(v.votes_sent, 0);
        assert!(Identity(v.next_identity).is_minion());
    }
}

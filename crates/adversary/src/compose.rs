//! Composition of attack strategies: concurrent and phased campaigns.
//!
//! The paper evaluates each attrition attack in isolation; real
//! adversaries compose them — a network-level blackout to stall audits,
//! then an admission flood timed to land exactly when the victims come
//! back and try to recover (the mobile-adversary pattern of Bonomi et
//! al.). [`Compose`] runs any number of child strategies against one
//! world, each with its own start offset: offset zero children run
//! concurrently from the first instant, later offsets phase in over the
//! campaign.
//!
//! Mechanically, every child keeps its own strategy-private timer-tag
//! encoding; the composite gives child `i` the adversary-timer *channel*
//! `i + 1` (channel 0 is the composite's own phase starter) and routes
//! each firing timer by the channel the world restamps on dispatch — see
//! [`lockss_core::adversary::schedule_adversary_timer`]. Messages from
//! loyal peers are broadcast to every started child: poll ids are
//! globally unique, so exactly the child that opened the bogus poll
//! reacts. When a child starts, the composite records a phase mark in the
//! run metrics, so per-phase summaries fall out of every composite run.

use lockss_core::{Adversary, Message, World};
use lockss_net::NodeId;
use lockss_sim::{Duration, Engine};

struct Child {
    start: Duration,
    adversary: Box<dyn Adversary>,
    started: bool,
}

/// A composite adversary: child strategies with per-child start offsets.
pub struct Compose {
    children: Vec<Child>,
}

/// The composite's own timers (phase starts) run on this channel; child
/// `i` runs on channel `CHANNEL_SELF + 1 + i`.
const CHANNEL_SELF: u64 = 0;

impl Compose {
    /// An empty composition; add children with [`Compose::with`].
    pub fn new() -> Compose {
        Compose {
            children: Vec::new(),
        }
    }

    /// Adds a child strategy starting `start` after the beginning of the
    /// run (`Duration::ZERO` to run from the first instant).
    pub fn with(mut self, start: Duration, adversary: Box<dyn Adversary>) -> Compose {
        self.children.push(Child {
            start,
            adversary,
            started: false,
        });
        self
    }

    /// Number of child strategies.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True if the composition has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    fn start_child(&mut self, world: &mut World, eng: &mut Engine<World>, index: usize) {
        let child = &mut self.children[index];
        if child.started {
            return;
        }
        child.started = true;
        world.mark_phase(child.adversary.name(), eng);
        world.set_adversary_channel(CHANNEL_SELF + 1 + index as u64);
        child.adversary.begin(world, eng);
    }
}

impl Default for Compose {
    fn default() -> Compose {
        Compose::new()
    }
}

impl Adversary for Compose {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        for i in 0..self.children.len() {
            if self.children[i].start.is_zero() {
                self.start_child(world, eng, i);
            } else {
                world.set_adversary_channel(CHANNEL_SELF);
                lockss_core::adversary::schedule_adversary_timer(
                    world,
                    eng,
                    self.children[i].start,
                    i as u64,
                );
            }
        }
    }

    fn on_message(
        &mut self,
        world: &mut World,
        eng: &mut Engine<World>,
        minion: NodeId,
        from: NodeId,
        msg: Message,
    ) {
        // Broadcast: children identify their own traffic by poll id. The
        // channel is restamped per child so any timers the handler
        // schedules route back to that child.
        for i in 0..self.children.len() {
            if !self.children[i].started {
                continue;
            }
            world.set_adversary_channel(CHANNEL_SELF + 1 + i as u64);
            self.children[i]
                .adversary
                .on_message(world, eng, minion, from, msg.clone());
        }
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        let channel = world.adversary_channel();
        if channel == CHANNEL_SELF {
            let index = tag as usize;
            if index < self.children.len() {
                self.start_child(world, eng, index);
            }
            return;
        }
        let index = (channel - CHANNEL_SELF - 1) as usize;
        if let Some(child) = self.children.get_mut(index) {
            if child.started {
                child.adversary.on_timer(world, eng, tag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_core::NullAdversary;

    #[test]
    fn composition_builds() {
        let c = Compose::new()
            .with(Duration::ZERO, Box::new(NullAdversary))
            .with(Duration::from_days(30), Box::new(NullAdversary));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.name(), "composite");
    }
}

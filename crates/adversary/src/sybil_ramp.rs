//! The sybil admission ramp: a slowly escalating garbage-invitation
//! campaign from ever-fresh identities.
//!
//! The §7.3 admission flood hits its whole victim set at once, which makes
//! it easy to notice. This variant ramps instead: it starts against a
//! small fraction of the population and widens the victim set by `step`
//! every `step_interval` until everyone is covered, then sustains the
//! flood for the rest of the run. Every invitation uses a brand-new sybil
//! identity (unconstrained identities, §3.1), so reputation can never
//! attach to the attacker; the defense being probed is pure admission
//! control — random drops of unknowns plus the refractory period — whose
//! per-victim cost ceiling is independent of how many identities the
//! adversary can mint.
//!
//! Like the flood, each burst against a victim/AU sends garbage
//! invitations until one is admitted (free for the victim to drop, cheap
//! to detect once admitted) and then returns exactly at refractory expiry
//! with insider timing.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, Identity, World};
use lockss_effort::Purpose;
use lockss_sim::{Duration, Engine};

const KIND_STEP: u64 = 0;
const KIND_BURST: u64 = 1;

fn burst_tag(victim: usize, au: u32) -> u64 {
    KIND_BURST | ((victim as u64) << 4) | ((au as u64) << 28)
}

fn decode_burst(tag: u64) -> (usize, u32) {
    (((tag >> 4) & 0xFF_FFFF) as usize, (tag >> 28) as u32)
}

/// The escalating sybil admission attack.
pub struct SybilRamp {
    /// Fraction of the population added to the victim set per step.
    pub step: f64,
    /// Time between escalation steps.
    pub step_interval: Duration,
    /// Victim order (a fixed random permutation; the active set is a
    /// growing prefix).
    order: Vec<usize>,
    /// How many of `order` are currently under attack.
    active: usize,
    next_identity: u64,
    /// Garbage invitations sent (diagnostics).
    pub invitations_sent: u64,
    /// Bursts that ended in an admission (diagnostics).
    pub admissions: u64,
}

impl SybilRamp {
    /// A ramp growing by `step` of the population every `step_days` days.
    pub fn new(step: f64, step_days: u64) -> SybilRamp {
        SybilRamp {
            step: step.clamp(0.0, 1.0),
            step_interval: Duration::from_days(step_days),
            order: Vec::new(),
            active: 0,
            next_identity: Identity::MINION_BASE + (1 << 40),
            invitations_sent: 0,
            admissions: 0,
        }
    }

    /// The current victim-set coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.order.is_empty() {
            return 0.0;
        }
        self.active as f64 / self.order.len() as f64
    }

    fn fresh_identity(&mut self) -> Identity {
        let id = Identity(self.next_identity);
        self.next_identity += 1;
        id
    }

    /// Widens the victim set by one step and opens bursts against the
    /// newly covered victims.
    fn escalate(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let n = self.order.len();
        let add = ((n as f64) * self.step).round().max(1.0) as usize;
        let new_active = (self.active + add).min(n);
        for i in self.active..new_active {
            let victim = self.order[i];
            for au in 0..world.cfg.n_aus as u32 {
                let jitter = world
                    .rng
                    .duration_between(Duration::SECOND, world.cfg.protocol.refractory);
                schedule_adversary_timer(world, eng, jitter, burst_tag(victim, au));
            }
        }
        self.active = new_active;
        world.note_adversary_action(eng, "sybil-ramp/escalate", new_active as u64);
        if self.active < n {
            schedule_adversary_timer(world, eng, self.step_interval, KIND_STEP);
        }
    }

    /// One burst against (victim, au): sybil invitations until admitted.
    fn burst(&mut self, world: &mut World, eng: &mut Engine<World>, victim: usize, au: u32) {
        let now = eng.now();
        let cfg = world.cfg.protocol.clone();

        // Insider timing: if the victim is refractory, return at expiry.
        if let Some(until) = world
            .peers
            .au(victim, au as usize)
            .admission
            .refractory_until()
        {
            if now < until {
                schedule_adversary_timer(
                    world,
                    eng,
                    until.since(now) + Duration::SECOND,
                    burst_tag(victim, au),
                );
                return;
            }
        }

        let no_refractory = cfg.ablation.no_refractory;
        let consider = world.cost().consider_cost();
        let detect = world.balanced_effort(world.cost().bogus_intro_detect());
        let sent_before = self.invitations_sent;
        for _ in 0..1_000 {
            self.invitations_sent += 1;
            let id = self.fresh_identity();
            let outcome = {
                let (au_state, rng) = world.peers.au_and_rng_mut(victim, au as usize);
                au_state
                    .admission
                    .filter(id, &au_state.known, now, &cfg, rng)
            };
            if matches!(
                outcome,
                lockss_core::admission::AdmissionOutcome::Admitted { .. }
            ) {
                self.admissions += 1;
                world.charge_loyal(victim, Purpose::Consider, consider);
                world.charge_loyal(victim, Purpose::VerifyIntro, detect);
                if !no_refractory {
                    break;
                }
            }
        }
        // Sybil bursts also bypass the message layer; tag them so the
        // trace shows which victim waves the escalation produced.
        world.note_adversary_action(eng, "sybil-ramp/burst", self.invitations_sent - sent_before);
        schedule_adversary_timer(
            world,
            eng,
            cfg.refractory + Duration::SECOND,
            burst_tag(victim, au),
        );
    }
}

impl Adversary for SybilRamp {
    fn name(&self) -> &'static str {
        "sybil-ramp"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let mut order: Vec<usize> = (0..world.n_loyal()).collect();
        world.rng.shuffle(&mut order);
        self.order = order;
        self.escalate(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag & 0xF {
            KIND_STEP => self.escalate(world, eng),
            KIND_BURST => {
                let (victim, au) = decode_burst(tag);
                if victim < world.n_loyal() && (au as usize) < world.cfg.n_aus {
                    self.burst(world, eng, victim, au);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for (v, au) in [(0usize, 0u32), (77, 599), (54321, 3)] {
            let tag = burst_tag(v, au);
            assert_eq!(tag & 0xF, KIND_BURST);
            assert_eq!(decode_burst(tag), (v, au));
        }
    }

    #[test]
    fn identities_are_fresh_minions() {
        let mut r = SybilRamp::new(0.25, 30);
        let a = r.fresh_identity();
        let b = r.fresh_identity();
        assert_ne!(a, b);
        assert!(a.is_minion() && b.is_minion());
    }

    #[test]
    fn coverage_starts_empty() {
        let r = SybilRamp::new(0.25, 30);
        assert_eq!(r.coverage(), 0.0);
    }
}

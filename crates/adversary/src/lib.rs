//! Attrition attack strategies (§6.2, §7).
//!
//! All adversaries share the paper's conservative capabilities (§3.1):
//! total information awareness (free, instantaneous coordination), insider
//! information (they know victims' parameters and admission state),
//! unconstrained identities, and — for the effortful attacker — unlimited
//! compute, charged to the adversary ledger but never rate-limiting him.
//! Minions sit outside the loyal population: loyal peers never solicit
//! votes from them (§6.2).
//!
//! - [`PipeStoppage`]: the effortless network-level DoS (§7.2) —
//!   suppresses all communication for a coverage-sized random subset for a
//!   duration, repeating after a 30-day recuperation with a fresh subset.
//! - [`AdmissionFlood`]: the admission-control attack (§7.3) — cheap
//!   garbage invitations from unknown identities keep victims' refractory
//!   periods permanently triggered.
//! - [`BruteForce`]: the effortful attack on the effort-verification
//!   filters (§7.4) — valid introductory efforts from in-debt identities,
//!   then defection at INTRO, REMAINING, or not at all (NONE).

//! - [`VoteFlood`]: the unsolicited bogus-vote flood (§5.1) — defeated for
//!   free because votes can only be supplied in response to an invitation.
//!
//! Beyond the paper's evaluation, two dynamic-environment attacks:
//!
//! - [`ChurnStorm`]: mass departure/re-arrival synchronized with the poll
//!   cadence (the §9 "more dynamic environment", sharpened into an attack);
//! - [`SybilRamp`]: an admission flood that escalates its victim set over
//!   time, minting a fresh sybil identity per invitation;
//! - [`MobileTakeover`]: a migrating Byzantine compromise with a fixed
//!   concurrency budget — compromised peers vote from pre-corruption
//!   shadows and poison the repairs they serve; cure restores loyalty but
//!   not data, so the §4.3 repair machinery must heal the damage.
//!
//! And composition: [`Compose`] runs any number of the above against one
//! world, concurrently or phased by per-child start offsets, so campaigns
//! like "pipe stoppage, then admission flood during recovery" are a
//! handful of lines.

pub mod admission_flood;
pub mod brute_force;
pub mod churn_storm;
pub mod compose;
pub mod mobile_takeover;
pub mod pipe_stoppage;
pub mod sybil_ramp;
pub mod vote_flood;

pub use admission_flood::AdmissionFlood;
pub use brute_force::{BruteForce, Defection};
pub use churn_storm::ChurnStorm;
pub use compose::Compose;
pub use mobile_takeover::MobileTakeover;
pub use pipe_stoppage::PipeStoppage;
pub use sybil_ramp::SybilRamp;
pub use vote_flood::VoteFlood;

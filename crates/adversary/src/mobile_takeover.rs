//! The mobile-takeover adversary: a migrating Byzantine compromise with a
//! fixed concurrency budget, plus post-compromise recovery.
//!
//! Mobile-adversary work (Bonomi et al., *Reliable Broadcast despite
//! Mobile Byzantine Faults*) models an attacker who controls at most `B`
//! peers at a time but can *move*: a compromised peer is eventually cured
//! — restored to loyal behavior — while the attacker takes over fresh
//! victims. The cure restores loyalty, not data ("cure ≠ heal"): the
//! replica stays damaged until the ordinary audit-and-repair machinery
//! (§4.3) heals it, so over a long campaign the question is whether the
//! protocol's repair rate outruns the adversary's corruption rate.
//!
//! While compromised, a peer attacks from inside the loyal population
//! through the existing message paths (see `lockss_core::world`): it
//! votes from a pre-corruption *shadow* snapshot of its replica — hiding
//! the damage, and volunteering as a plausible repair candidate — and any
//! repair block it serves is poisoned, leaving the requester's block
//! damaged. No protocol message changes shape; the attack is pure state.
//!
//! Each migration cures the current victim set and compromises a fresh
//! random one, so the budget invariant — at most `budget` concurrent
//! compromises — holds at every instant. The migration cadence is either
//! synced to the poll interval (the default: the takeover blankets exactly
//! one audit cycle per victim) or a fixed period. An optional `horizon`
//! ends the campaign — curing every remaining victim — so recovery
//! studies can measure time-to-heal from a clean "attack over" mark.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, World};
use lockss_sim::{Duration, Engine};

const TAG_MIGRATE: u64 = 0;
const TAG_END: u64 = 1;

/// Blocks corrupted per AU at each takeover. Two per AU keeps single
/// polls from trivially healing a victim (one repair per lost poll)
/// while staying far from wholesale replica destruction.
pub const CORRUPT_BLOCKS_PER_AU: u64 = 2;

/// Budgeted migrating compromise with cure-on-migration.
pub struct MobileTakeover {
    /// Maximum concurrent compromises (clamped to the loyal population
    /// at each migration).
    pub budget: u32,
    /// Migration period; `None` syncs to the protocol's poll interval.
    pub period: Option<Duration>,
    /// Campaign end: cure every victim and stop migrating. `None` runs
    /// for the whole simulation.
    pub horizon: Option<Duration>,
    victims: Vec<usize>,
    ended: bool,
    /// Completed migrations (diagnostics).
    pub migrations: u64,
    /// Individual takeovers performed (diagnostics).
    pub takeovers: u64,
    /// Individual cures performed (diagnostics).
    pub cures: u64,
}

impl MobileTakeover {
    /// A takeover holding at most `budget` peers at a time, migrating
    /// once per poll interval.
    pub fn new(budget: u32) -> MobileTakeover {
        MobileTakeover {
            budget,
            period: None,
            horizon: None,
            victims: Vec::new(),
            ended: false,
            migrations: 0,
            takeovers: 0,
            cures: 0,
        }
    }

    /// Migrate on a fixed period instead of the poll cadence.
    pub fn with_period(mut self, period: Duration) -> MobileTakeover {
        self.period = Some(period);
        self
    }

    /// End the campaign (cure everyone) after `horizon`.
    pub fn with_horizon(mut self, horizon: Duration) -> MobileTakeover {
        self.horizon = Some(horizon);
        self
    }

    fn period(&self, world: &World) -> Duration {
        self.period
            .unwrap_or(world.cfg.protocol.poll_interval)
            .max(Duration::SECOND)
    }

    fn cure_all(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let cured = self.victims.len() as u64;
        for p in self.victims.drain(..) {
            if world.cure_peer(eng, p) {
                self.cures += 1;
            }
        }
        if cured > 0 {
            world.note_adversary_action(eng, "mobile-takeover/cure", cured);
        }
    }

    fn migrate(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.cure_all(world, eng);
        let n = world.n_loyal();
        let k = (self.budget as usize).min(n);
        self.victims = world.rng.sample_indices(n, k);
        for i in 0..self.victims.len() {
            if world.compromise_peer(eng, self.victims[i], CORRUPT_BLOCKS_PER_AU) {
                self.takeovers += 1;
            }
        }
        self.migrations += 1;
        world.note_adversary_action(eng, "mobile-takeover/compromise", k as u64);
        let period = self.period(world);
        schedule_adversary_timer(world, eng, period, TAG_MIGRATE);
    }
}

impl Adversary for MobileTakeover {
    fn name(&self) -> &'static str {
        "mobile-takeover"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        if let Some(horizon) = self.horizon {
            schedule_adversary_timer(world, eng, horizon, TAG_END);
        }
        self.migrate(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag {
            TAG_MIGRATE if !self.ended => self.migrate(world, eng),
            TAG_END if !self.ended => {
                self.ended = true;
                self.cure_all(world, eng);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_core::WorldConfig;

    fn world(seed: u64) -> (World, Engine<World>) {
        let cfg = WorldConfig {
            n_peers: 30,
            n_aus: 2,
            seed,
            ..WorldConfig::default()
        };
        (World::new(cfg), Engine::new())
    }

    #[test]
    fn budget_bounds_concurrency_across_migrations() {
        let (mut world, mut eng) = world(11);
        let mut adv = MobileTakeover::new(4).with_period(Duration::DAY * 20);
        adv.begin(&mut world, &mut eng);
        assert_eq!(world.peers.compromised_count(), 4);
        for _ in 0..5 {
            adv.migrate(&mut world, &mut eng);
            assert_eq!(world.peers.compromised_count(), 4);
            assert!(world.compromise_stats().max_concurrent <= 4);
        }
        assert_eq!(adv.takeovers, 24);
        assert_eq!(adv.cures, 20);
    }

    #[test]
    fn horizon_cures_everyone_and_stops() {
        let (mut world, mut eng) = world(12);
        let mut adv = MobileTakeover::new(3)
            .with_period(Duration::DAY * 10)
            .with_horizon(Duration::DAY * 15);
        adv.begin(&mut world, &mut eng);
        assert_eq!(world.peers.compromised_count(), 3);
        adv.on_timer(&mut world, &mut eng, TAG_END);
        assert_eq!(world.peers.compromised_count(), 0);
        // Migrations after the end are ignored.
        adv.on_timer(&mut world, &mut eng, TAG_MIGRATE);
        assert_eq!(world.peers.compromised_count(), 0);
        // The damage from the campaign outlives the cure.
        assert!(world.peers.total_damaged() > 0);
    }

    #[test]
    fn budget_clamps_to_population() {
        let (mut world, mut eng) = world(13);
        let mut adv = MobileTakeover::new(500);
        adv.begin(&mut world, &mut eng);
        assert_eq!(world.peers.compromised_count(), world.n_loyal());
    }
}

//! The brute-force effortful adversary (§7.4).
//!
//! "We consider an attack by a 'brute force' adversary who continuously
//! sends enough poll invitations with valid introductory efforts to get
//! past the random drops; ... the adversary launches attacks from in-debt
//! addresses. We conservatively initialize all adversary addresses with a
//! debt grade at all loyal peers."
//!
//! Once through admission control, the adversary defects at one of three
//! points:
//!
//! - [`Defection::Intro`]: never follows up the PollAck with a PollProof
//!   (the reservation attack — the victim cancels and penalizes);
//! - [`Defection::Remaining`]: supplies the PollProof, receives the
//!   expensive vote, then never sends an EvaluationReceipt (the wasteful
//!   attack);
//! - [`Defection::None_`]: participates fully, indistinguishable from a
//!   legitimate (if insatiable) poller.
//!
//! Every invitation carries a *real* introductory effort, charged to the
//! adversary; dropped invitations are sunk cost — that is the economics
//! the admission filter is calibrated to (§6.3).

use std::collections::BTreeMap;

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, Identity, Message, PollId, World};
use lockss_net::NodeId;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_storage::AuId;

const KIND_BURST: u64 = 0;
const KIND_ACK_TIMEOUT: u64 = 1;

fn burst_tag(victim: usize, au: u32) -> u64 {
    KIND_BURST | ((victim as u64) << 4) | ((au as u64) << 28)
}

fn decode_burst(tag: u64) -> (usize, u32) {
    (((tag >> 4) & 0xFF_FFFF) as usize, (tag >> 28) as u32)
}

fn timeout_tag(poll: PollId) -> u64 {
    KIND_ACK_TIMEOUT | (poll.0 << 4)
}

fn decode_timeout(tag: u64) -> PollId {
    PollId(tag >> 4)
}

/// Where the brute-force adversary defects (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Defection {
    /// Desert after the Poll message (reservation attack).
    Intro,
    /// Desert after the PollProof (waste the vote).
    Remaining,
    /// Never desert: full participation.
    None_,
}

impl Defection {
    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Defection::Intro => "INTRO",
            Defection::Remaining => "REMAINING",
            Defection::None_ => "NONE",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BogusStage {
    AwaitingAck,
    AwaitingVote,
}

#[derive(Clone, Copy, Debug)]
struct BogusPoll {
    victim: usize,
    au: u32,
    stage: BogusStage,
    minion: NodeId,
}

/// The §7.4 brute-force attacker.
pub struct BruteForce {
    pub defection: Defection,
    /// Minion network nodes (assigned round-robin per victim/AU).
    minions: Vec<NodeId>,
    /// In-flight bogus polls.
    pending: BTreeMap<PollId, BogusPoll>,
    /// Diagnostics.
    pub invitations_sent: u64,
    pub admissions: u64,
    pub votes_received: u64,
}

impl BruteForce {
    /// Creates the attacker with the given defection strategy.
    pub fn new(defection: Defection) -> BruteForce {
        BruteForce {
            defection,
            minions: Vec::new(),
            pending: BTreeMap::new(),
            invitations_sent: 0,
            admissions: 0,
            votes_received: 0,
        }
    }

    /// The stable in-debt identity used against (victim, au).
    fn identity_for(&self, victim: usize, au: u32, n_aus: usize) -> Identity {
        Identity(Identity::MINION_BASE + (victim * n_aus) as u64 + au as u64)
    }

    fn minion_for(&self, victim: usize, au: u32) -> NodeId {
        self.minions[(victim + au as usize) % self.minions.len()]
    }

    /// Sends one invitation (with a real introductory effort) and arms the
    /// silent-drop timeout.
    fn send_try(&mut self, world: &mut World, eng: &mut Engine<World>, victim: usize, au: u32) {
        let now = eng.now();
        // Real introductory effort per try (§6.3 economics). Free if the
        // effort-balancing ablation removed the requirement.
        let intro = world.balanced_effort(world.cost().intro_gen());
        world.charge_adversary(intro);
        self.invitations_sent += 1;

        let poll = world.alloc_poll_id();
        // Provenance: the trace ties this bogus poll id to the strategy
        // before its Poll message appears in the stream.
        world.note_adversary_action(eng, "brute-force/poll", poll.0);
        let minion = self.minion_for(victim, au);
        let identity = self.identity_for(victim, au, world.cfg.n_aus);
        let victim_node = world.peers.node(victim);
        let vote_deadline = now + Duration::DAY * 2;
        self.pending.insert(
            poll,
            BogusPoll {
                victim,
                au,
                stage: BogusStage::AwaitingAck,
                minion,
            },
        );
        world.send_message(
            eng,
            minion,
            victim_node,
            Message::Poll {
                au: AuId(au),
                poll,
                poller: identity,
                intro_valid: true,
                vote_deadline,
            },
        );
        schedule_adversary_timer(world, eng, Duration::MINUTE * 10, timeout_tag(poll));
    }

    /// Schedules the next admission burst against (victim, au) one
    /// refractory period out.
    fn schedule_next_burst(&self, world: &World, eng: &mut Engine<World>, victim: usize, au: u32) {
        let refractory = world.cfg.protocol.refractory;
        schedule_adversary_timer(
            world,
            eng,
            refractory + Duration::MINUTE,
            burst_tag(victim, au),
        );
    }

    fn on_ack_timeout(&mut self, world: &mut World, eng: &mut Engine<World>, poll: PollId) {
        let Some(entry) = self.pending.get(&poll).copied() else {
            return;
        };
        if entry.stage != BogusStage::AwaitingAck {
            return;
        }
        // Silently dropped (or refused without reply): retry immediately —
        // the whole point of brute force is to push through the drops.
        self.pending.remove(&poll);
        self.send_try(world, eng, entry.victim, entry.au);
    }

    fn on_ack(&mut self, world: &mut World, eng: &mut Engine<World>, poll: PollId, accept: bool) {
        let Some(entry) = self.pending.get(&poll).copied() else {
            return;
        };
        if entry.stage != BogusStage::AwaitingAck {
            return;
        }
        self.admissions += 1;
        // Whether accepted or refused, the admission has consumed the
        // victim's unknown/in-debt slot: the refractory period is armed.
        if !accept {
            self.pending.remove(&poll);
            self.schedule_next_burst(world, eng, entry.victim, entry.au);
            return;
        }
        match self.defection {
            Defection::Intro => {
                // Desert: the victim holds a reservation until its proof
                // timeout fires.
                self.pending.remove(&poll);
                self.schedule_next_burst(world, eng, entry.victim, entry.au);
            }
            Defection::Remaining | Defection::None_ => {
                let remaining = world.balanced_effort(world.cost().remaining_gen());
                world.charge_adversary(remaining);
                let victim_node = world.peers.node(entry.victim);
                world.send_message(
                    eng,
                    entry.minion,
                    victim_node,
                    Message::PollProof {
                        au: AuId(entry.au),
                        poll,
                        remaining_valid: true,
                    },
                );
                self.pending.insert(
                    poll,
                    BogusPoll {
                        stage: BogusStage::AwaitingVote,
                        ..entry
                    },
                );
                self.schedule_next_burst(world, eng, entry.victim, entry.au);
            }
        }
    }

    fn on_vote(&mut self, world: &mut World, eng: &mut Engine<World>, poll: PollId) {
        let Some(entry) = self.pending.get(&poll).copied() else {
            return;
        };
        if entry.stage != BogusStage::AwaitingVote {
            return;
        }
        self.votes_received += 1;
        self.pending.remove(&poll);
        if self.defection == Defection::None_ {
            // Full participation: evaluate the vote (the adversary has an
            // incorruptible replica, but evaluation effort is evaluation
            // effort) and return the valid receipt (the MBF byproduct).
            let eval = world.cost().evaluation_cost(1);
            world.charge_adversary(eval);
            let victim_node = world.peers.node(entry.victim);
            world.send_message(
                eng,
                entry.minion,
                victim_node,
                Message::EvaluationReceipt {
                    au: AuId(entry.au),
                    poll,
                    valid: true,
                },
            );
        }
        // REMAINING: silently discard the vote; the victim penalizes us at
        // its receipt deadline — we are already in debt.
    }
}

impl Adversary for BruteForce {
    fn name(&self) -> &'static str {
        match self.defection {
            Defection::Intro => "brute-force/INTRO",
            Defection::Remaining => "brute-force/REMAINING",
            Defection::None_ => "brute-force/NONE",
        }
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.minions = world.add_minions(16);
        let n_aus = world.cfg.n_aus;
        // Conservative §7.4 initialization: all attack identities start in
        // debt at their victims.
        for victim in 0..world.n_loyal() {
            for au in 0..n_aus as u32 {
                let id = self.identity_for(victim, au, n_aus);
                world.peers.au_mut(victim, au as usize).known.seed(
                    id,
                    lockss_core::reputation::Grade::Debt,
                    SimTime::ZERO,
                );
                let jitter = world
                    .rng
                    .duration_between(Duration::SECOND, world.cfg.protocol.refractory);
                schedule_adversary_timer(world, eng, jitter, burst_tag(victim, au));
            }
        }
    }

    fn on_message(
        &mut self,
        world: &mut World,
        eng: &mut Engine<World>,
        _minion: NodeId,
        _from: NodeId,
        msg: Message,
    ) {
        match msg {
            Message::PollAck { poll, accept, .. } => self.on_ack(world, eng, poll, accept),
            Message::Vote { poll, .. } => self.on_vote(world, eng, poll),
            // Repairs/receipts to minions are impossible (loyal peers never
            // solicit minions); ignore anything else.
            _ => {}
        }
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag & 0xF {
            KIND_BURST => {
                let (victim, au) = decode_burst(tag);
                if victim < world.n_loyal() && (au as usize) < world.cfg.n_aus {
                    // Insider information: wait out any live refractory
                    // period rather than wasting intro efforts against it.
                    let now = eng.now();
                    if let Some(until) = world
                        .peers
                        .au(victim, au as usize)
                        .admission
                        .refractory_until()
                    {
                        if now < until {
                            schedule_adversary_timer(
                                world,
                                eng,
                                until.since(now) + Duration::SECOND,
                                burst_tag(victim, au),
                            );
                            return;
                        }
                    }
                    self.send_try(world, eng, victim, au);
                }
            }
            KIND_ACK_TIMEOUT => {
                let poll = decode_timeout(tag);
                self.on_ack_timeout(world, eng, poll);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        let t = burst_tag(42, 7);
        assert_eq!(t & 0xF, KIND_BURST);
        assert_eq!(decode_burst(t), (42, 7));
        let p = timeout_tag(PollId(123456));
        assert_eq!(p & 0xF, KIND_ACK_TIMEOUT);
        assert_eq!(decode_timeout(p), PollId(123456));
    }

    #[test]
    fn identities_are_stable_and_distinct() {
        let a = BruteForce::new(Defection::Intro);
        let x = a.identity_for(1, 2, 50);
        let y = a.identity_for(1, 2, 50);
        let z = a.identity_for(2, 2, 50);
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert!(x.is_minion());
    }

    #[test]
    fn labels() {
        assert_eq!(Defection::Intro.label(), "INTRO");
        assert_eq!(Defection::Remaining.label(), "REMAINING");
        assert_eq!(Defection::None_.label(), "NONE");
    }
}

//! The churn-storm adversary: mass departure/re-arrival synchronized
//! with the poll cadence.
//!
//! The paper's §9 asks how the attrition defenses fare "in a more dynamic
//! environment"; mobile-adversary work (Bonomi et al., *Reliable Broadcast
//! despite Mobile Byzantine Faults*) sharpens the question by letting the
//! disruption *move* through the population over time. This strategy
//! models the worst-case correlated churn pattern for an audit protocol
//! with a fixed poll rate: once per inter-poll interval a fresh random
//! `coverage` fraction of the population departs simultaneously — right
//! when the interval's solicitation windows need them as voters — and
//! re-arrives after `duty` of the interval has elapsed.
//!
//! Departure is modelled as the peer going dark (no messages in or out,
//! like an operator taking the replica offline), so solicitations to the
//! departed time out as refusals and the departed peers' own polls starve.
//! Unlike [`crate::PipeStoppage`] there is no recuperation period and the
//! victim set migrates every cycle, so over a long storm *every* peer
//! repeatedly loses poll opportunities. The attack is effortless; the
//! defense it probes is redundancy in time (§5.2): polls need only a
//! quorum of the reference list, whenever it is reachable.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, World};
use lockss_net::NodeId;
use lockss_sim::{Duration, Engine};

const TAG_DEPART: u64 = 0;
const TAG_RETURN: u64 = 1;

/// Poll-synchronized mass departure/re-arrival churn.
pub struct ChurnStorm {
    /// Fraction of the loyal population departing each cycle (0.0–1.0).
    pub coverage: f64,
    /// Fraction of each poll interval spent departed (0.0–1.0); the
    /// default mirrors the protocol's solicitation-window fraction so
    /// departures blanket exactly the span in which votes are solicited.
    pub duty: f64,
    departed: Vec<NodeId>,
    /// Completed depart/return cycles (diagnostics).
    pub cycles: u64,
    /// Total individual departures so far (diagnostics).
    pub departures: u64,
}

impl ChurnStorm {
    /// A storm taking `coverage` of the population offline for `duty` of
    /// every poll interval.
    pub fn new(coverage: f64, duty: f64) -> ChurnStorm {
        ChurnStorm {
            coverage: coverage.clamp(0.0, 1.0),
            duty: duty.clamp(0.0, 1.0),
            departed: Vec::new(),
            cycles: 0,
            departures: 0,
        }
    }

    /// Peers departing per cycle.
    pub fn departures_per_cycle(&self, n_loyal: usize) -> usize {
        ((n_loyal as f64) * self.coverage).round() as usize
    }

    fn depart(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let n = world.n_loyal();
        let k = self.departures_per_cycle(n);
        let chosen = world.rng.sample_indices(n, k);
        self.departed = chosen.iter().map(|&i| world.peers.node(i)).collect();
        for node in &self.departed {
            world.net.set_stopped(*node, true);
        }
        self.departures += self.departed.len() as u64;
        world.note_adversary_action(eng, "churn-storm/depart", self.departed.len() as u64);
        let interval = world.cfg.protocol.poll_interval;
        schedule_adversary_timer(world, eng, interval.mul_f64(self.duty), TAG_RETURN);
    }

    fn rejoin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let returned = self.departed.len() as u64;
        for node in self.departed.drain(..) {
            world.net.set_stopped(node, false);
        }
        self.cycles += 1;
        world.note_adversary_action(eng, "churn-storm/rejoin", returned);
        let interval = world.cfg.protocol.poll_interval;
        schedule_adversary_timer(
            world,
            eng,
            interval.mul_f64(1.0 - self.duty).max(Duration::SECOND),
            TAG_DEPART,
        );
    }
}

impl Adversary for ChurnStorm {
    fn name(&self) -> &'static str {
        "churn-storm"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.depart(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag {
            TAG_DEPART => self.depart(world, eng),
            TAG_RETURN => self.rejoin(world, eng),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_clamped() {
        let s = ChurnStorm::new(3.0, -1.0);
        assert!((s.coverage - 1.0).abs() < 1e-12);
        assert_eq!(s.duty, 0.0);
    }

    #[test]
    fn departure_count_rounds() {
        let s = ChurnStorm::new(0.5, 0.7);
        assert_eq!(s.departures_per_cycle(100), 50);
        assert_eq!(s.departures_per_cycle(0), 0);
    }
}

//! The admission-control adversary (§7.3).
//!
//! "This adversary sends cheap garbage invitations to varying fractions of
//! the peer population for varying periods of time separated by a fixed
//! recuperation period of 30 days. The adversary sends his invitations
//! using poller addresses that are unknown to the victims. These, when
//! eventually admitted, cause those victims to enter their refractory
//! periods and drop all subsequent invitations from unknown and in-debt
//! peers."
//!
//! The flood itself is modelled as an admission *burst*: the adversary
//! sends garbage invitations back-to-back (each is free for the victim to
//! drop) until one is admitted; the victim pays consideration plus cheap
//! bogus-proof detection, and its refractory period re-arms. With insider
//! information (§3.1) the adversary times the next burst exactly at
//! refractory expiry, which is the strongest version of this attack.

use lockss_core::adversary::schedule_adversary_timer;
use lockss_core::{Adversary, Identity, World};
use lockss_effort::Purpose;
use lockss_sim::{Duration, Engine};

const KIND_CYCLE_START: u64 = 0;
const KIND_CYCLE_END: u64 = 1;
const KIND_BURST: u64 = 2;

fn burst_tag(victim: usize, au: u32) -> u64 {
    KIND_BURST | ((victim as u64) << 4) | ((au as u64) << 28)
}

fn decode_burst(tag: u64) -> (usize, u32) {
    (((tag >> 4) & 0xFF_FFFF) as usize, (tag >> 28) as u32)
}

/// The §7.3 admission-control flood.
pub struct AdmissionFlood {
    /// Fraction of the loyal population attacked per cycle.
    pub coverage: f64,
    /// Attack window length per cycle.
    pub attack_len: Duration,
    /// Recuperation between cycles (paper: 30 days).
    pub recuperation: Duration,
    active: bool,
    victim_flags: Vec<bool>,
    next_identity: u64,
    /// Garbage invitations sent (diagnostics).
    pub invitations_sent: u64,
    /// Bursts that ended in an admission (refractory re-armed).
    pub admissions: u64,
}

impl AdmissionFlood {
    /// Creates the attack with the paper's 30-day recuperation.
    pub fn new(coverage: f64, attack_days: u64) -> AdmissionFlood {
        AdmissionFlood {
            coverage: coverage.clamp(0.0, 1.0),
            attack_len: Duration::from_days(attack_days),
            recuperation: Duration::from_days(30),
            active: false,
            victim_flags: Vec::new(),
            next_identity: Identity::MINION_BASE,
            invitations_sent: 0,
            admissions: 0,
        }
    }

    fn fresh_identity(&mut self) -> Identity {
        let id = Identity(self.next_identity);
        self.next_identity += 1;
        id
    }

    fn start_cycle(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let n = world.n_loyal();
        self.active = true;
        self.victim_flags = vec![false; n];
        let k = ((n as f64) * self.coverage).round() as usize;
        for v in world.rng.sample_indices(n, k) {
            self.victim_flags[v] = true;
            for au in 0..world.cfg.n_aus as u32 {
                // Stagger the opening bursts inside the first refractory
                // period so victims are not hit in lockstep.
                let jitter = world
                    .rng
                    .duration_between(Duration::SECOND, world.cfg.protocol.refractory);
                schedule_adversary_timer(world, eng, jitter, burst_tag(v, au));
            }
        }
        world.note_adversary_action(eng, "admission-flood/cycle-start", k as u64);
        schedule_adversary_timer(world, eng, self.attack_len, KIND_CYCLE_END);
    }

    fn end_cycle(&mut self, world: &mut World, eng: &mut Engine<World>) {
        let cleared = self.victim_flags.iter().filter(|&&f| f).count() as u64;
        self.active = false;
        self.victim_flags.clear();
        world.note_adversary_action(eng, "admission-flood/cycle-end", cleared);
        schedule_adversary_timer(world, eng, self.recuperation, KIND_CYCLE_START);
    }

    /// One flood burst against (victim, au): garbage invitations until one
    /// is admitted.
    fn burst(&mut self, world: &mut World, eng: &mut Engine<World>, victim: usize, au: u32) {
        if !self.active || !self.victim_flags.get(victim).copied().unwrap_or(false) {
            return;
        }
        let now = eng.now();
        let cfg = world.cfg.protocol.clone();

        // If the victim is still refractory (e.g. a loyal unknown was
        // admitted just before us), come back right at expiry.
        if let Some(until) = world
            .peers
            .au(victim, au as usize)
            .admission
            .refractory_until()
        {
            if now < until {
                schedule_adversary_timer(
                    world,
                    eng,
                    until.since(now) + Duration::SECOND,
                    burst_tag(victim, au),
                );
                return;
            }
        }

        // Garbage invitations are free to make and free for the victim to
        // drop; one eventually gets admitted (p = 1 - drop_unknown each).
        // With the refractory period ablated, nothing stops the flood at
        // one admission: every invitation that survives the random drop
        // costs a consideration — the unbounded cost the defense exists to
        // bound. The burst is capped at one wave per scheduling cycle.
        let no_refractory = cfg.ablation.no_refractory;
        let consider = world.cost().consider_cost();
        let detect = world.balanced_effort(world.cost().bogus_intro_detect());
        let sent_before = self.invitations_sent;
        for _ in 0..1_000 {
            self.invitations_sent += 1;
            let id = self.fresh_identity();
            let outcome = {
                let (au_state, rng) = world.peers.au_and_rng_mut(victim, au as usize);
                au_state
                    .admission
                    .filter(id, &au_state.known, now, &cfg, rng)
            };
            if matches!(
                outcome,
                lockss_core::admission::AdmissionOutcome::Admitted { .. }
            ) {
                self.admissions += 1;
                // The victim considers the admitted invitation and detects
                // the garbage proof (cheaply, §6.3).
                world.charge_loyal(victim, Purpose::Consider, consider);
                world.charge_loyal(victim, Purpose::VerifyIntro, detect);
                if !no_refractory {
                    break;
                }
            }
        }
        // The burst short-circuits the message layer (the invitations are
        // modelled directly against the admission filter), so this
        // provenance tag is the trace's only witness of it.
        world.note_adversary_action(
            eng,
            "admission-flood/burst",
            self.invitations_sent - sent_before,
        );
        // Next burst at refractory expiry.
        schedule_adversary_timer(
            world,
            eng,
            cfg.refractory + Duration::SECOND,
            burst_tag(victim, au),
        );
    }
}

impl Adversary for AdmissionFlood {
    fn name(&self) -> &'static str {
        "admission-flood"
    }

    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>) {
        self.start_cycle(world, eng);
    }

    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        match tag & 0xF {
            KIND_CYCLE_START => self.start_cycle(world, eng),
            KIND_CYCLE_END => self.end_cycle(world, eng),
            KIND_BURST => {
                let (victim, au) = decode_burst(tag);
                if victim < world.n_loyal() && (au as usize) < world.cfg.n_aus {
                    self.burst(world, eng, victim, au);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for (v, au) in [(0usize, 0u32), (99, 599), (12345, 42)] {
            let tag = burst_tag(v, au);
            assert_eq!(tag & 0xF, KIND_BURST);
            assert_eq!(decode_burst(tag), (v, au));
        }
    }

    #[test]
    fn identities_are_fresh_minions() {
        let mut a = AdmissionFlood::new(1.0, 10);
        let x = a.fresh_identity();
        let y = a.fresh_identity();
        assert_ne!(x, y);
        assert!(x.is_minion());
        assert!(y.is_minion());
    }
}

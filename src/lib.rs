//! Facade crate for the LOCKSS attrition-defense reproduction.
//!
//! Re-exports the public APIs of every subsystem crate so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! - [`sim`]: discrete-event engine, simulated time, seeded RNG;
//! - [`net`]: flow-level network with pipe-stoppage modelling;
//! - [`crypto`]: SHA-256, HMAC, memory-bound effort proofs (real mode);
//! - [`effort`]: the calibrated effort cost model and ledgers;
//! - [`storage`]: archival units, replicas, bit-rot damage;
//! - [`core`]: the audit/repair protocol with the attrition defenses;
//! - [`adversary`]: pipe stoppage, admission flood, brute force, churn
//!   storm, sybil ramp, and composite campaigns;
//! - [`metrics`]: the §6.1 evaluation metrics and trace-derived timelines;
//! - [`obs`]: out-of-band observability — metrics registry, profiling
//!   spans, sweep heartbeats;
//! - [`trace`]: structured event-trace record, replay verification, diff,
//!   and stats over deterministic runs;
//! - [`experiments`]: the scenario registry and runner regenerating every
//!   figure/table and running named campaigns.
//!
//! # Examples
//!
//! ```
//! use lockss::core::{World, WorldConfig};
//! use lockss::sim::{Duration, Engine, SimTime};
//!
//! // A small preservation network, simulated for sixty days.
//! let mut cfg = WorldConfig::default();
//! cfg.n_peers = 25;
//! cfg.n_aus = 1;
//! cfg.protocol.poll_interval = Duration::from_days(15);
//! let mut world = World::new(cfg);
//! let mut eng = Engine::new();
//! world.start(&mut eng);
//! let end = SimTime::ZERO + Duration::from_days(60);
//! eng.run_until(&mut world, end);
//! let summary = world.metrics.summarize(end);
//! assert!(summary.successful_polls > 0);
//! ```

pub use lockss_adversary as adversary;
pub use lockss_core as core;
pub use lockss_crypto as crypto;
pub use lockss_effort as effort;
pub use lockss_experiments as experiments;
pub use lockss_metrics as metrics;
pub use lockss_net as net;
pub use lockss_obs as obs;
pub use lockss_sim as sim;
pub use lockss_storage as storage;
pub use lockss_trace as trace;

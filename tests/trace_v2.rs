//! Acceptance tests for the block-columnar `LTRC2` trace wire.
//!
//! Four properties pin the format swap: (1) seeded-random event streams
//! round-trip byte-exactly through the columnar codec at any block
//! budget; (2) tampering — a corrupted block body, a lying frame
//! length, a flipped byte, a chopped tail — yields *distinct* accurate
//! diagnostics; (3) migrating a legacy `LTRC1` recording with
//! `to_v2`/`trace convert` preserves every statistic and shrinks the
//! file; (4) the parallel analytics (stats, diff, export) render
//! byte-identical output at any thread count, on real scenario traces.

use lockss::core::trace::{AdmissionVerdict, MsgKind, PollConclusion, TraceEvent, TraceSink};
use lockss::crypto::sha256;
use lockss::experiments::runner::run_once_recorded;
use lockss::experiments::scenario::Scenario;
use lockss::experiments::{Scale, ScenarioRegistry};
use lockss::sim::{Duration, SimTime};
use lockss::trace::{
    diff_traces_threaded, export_csv, trace_stats, trace_stats_threaded, AggregateStats, Recorder,
    RecorderV1, Trace, TraceError, TraceMeta, TraceRecord, TraceWire,
};

fn meta() -> TraceMeta {
    TraceMeta {
        scenario: "x".into(),
        scale: "q".into(),
        seed: 1,
        run_length_ms: 1000,
    }
}

/// Deterministic splitmix64 stream for the property sweep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One pseudo-random event covering every kind and payload codec.
fn random_event(rng: &mut Rng) -> TraceEvent {
    let r = |rng: &mut Rng, m: u64| (rng.next() % m) as u32;
    match rng.next() % 13 {
        0 => TraceEvent::PollStart {
            peer: r(rng, 100),
            au: r(rng, 4),
            poll: rng.next() % 1000,
        },
        1 => TraceEvent::PollOutcome {
            peer: r(rng, 100),
            au: r(rng, 4),
            poll: rng.next() % 1000,
            conclusion: match rng.next() % 4 {
                0 => PollConclusion::Win,
                1 => PollConclusion::Loss,
                2 => PollConclusion::Inconclusive,
                _ => PollConclusion::Inquorate,
            },
            votes: r(rng, 20),
        },
        2 => TraceEvent::MessageSend {
            from: r(rng, 100),
            to: r(rng, 100),
            kind: match rng.next() % 6 {
                0 => MsgKind::Poll,
                1 => MsgKind::PollAck,
                2 => MsgKind::PollProof,
                3 => MsgKind::Vote,
                4 => MsgKind::RepairRequest,
                _ => MsgKind::Repair,
            },
            au: r(rng, 4),
            poll: rng.next() % 1000,
            suppressed: rng.next().is_multiple_of(5),
        },
        3 => TraceEvent::Admission {
            peer: r(rng, 100),
            poller: rng.next() % 100,
            verdict: match rng.next() % 5 {
                0 => AdmissionVerdict::Admitted,
                1 => AdmissionVerdict::AdmittedIntroduced,
                2 => AdmissionVerdict::RandomDrop,
                3 => AdmissionVerdict::Refractory,
                _ => AdmissionVerdict::RateLimited,
            },
        },
        4 => TraceEvent::Damage {
            peer: r(rng, 100),
            au: r(rng, 4),
            block: rng.next() % 50,
            was_intact: rng.next().is_multiple_of(2),
        },
        5 => TraceEvent::Repair {
            peer: r(rng, 100),
            au: r(rng, 4),
            poll: rng.next() % 1000,
            block: rng.next() % 50,
            intact_after: rng.next().is_multiple_of(2),
        },
        6 => TraceEvent::AdversaryTimer {
            channel: rng.next() % 8,
            tag: rng.next() % 1000,
        },
        7 => TraceEvent::AdversaryAction {
            channel: rng.next() % 8,
            label: format!("attack/{}", rng.next() % 5),
            magnitude: rng.next() % 10_000,
        },
        8 => TraceEvent::PeerJoin { peer: r(rng, 100) },
        9 => TraceEvent::PhaseMark {
            label: format!("phase-{}", rng.next() % 3),
        },
        10 => TraceEvent::Compromise {
            peer: r(rng, 100),
            corrupted: rng.next() % 50,
        },
        11 => TraceEvent::Cure {
            peer: r(rng, 100),
            residual: rng.next() % 50,
        },
        _ => TraceEvent::PoisonedRepair {
            peer: r(rng, 100),
            au: r(rng, 4),
            poll: rng.next() % 1000,
            block: rng.next() % 50,
            server: r(rng, 100),
        },
    }
}

/// `n` random records with monotone time/ordinal (the sink contract).
fn random_stream(seed: u64, n: u64) -> Vec<TraceRecord> {
    let mut rng = Rng(seed);
    let mut at = 0u64;
    let mut seq = 0u64;
    (0..n)
        .map(|_| {
            at += rng.next() % 100_000;
            seq += 1 + rng.next() % 3;
            TraceRecord {
                at: SimTime(at),
                seq,
                event: random_event(&mut rng),
            }
        })
        .collect()
}

fn record_v2(records: &[TraceRecord], budget: usize) -> Trace {
    let rec = Recorder::with_block_events(&meta(), budget);
    let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
    for r in records {
        sink.record(r.at, r.seq, &r.event);
    }
    rec.finish()
}

#[test]
fn random_event_streams_roundtrip_across_block_budgets() {
    for seed in [1, 2, 3] {
        let records = random_stream(seed, 2000);
        let mut rendered = Vec::new();
        for budget in [1, 7, 1000, 65_536] {
            let trace = record_v2(&records, budget);
            assert_eq!(trace.wire(), TraceWire::V2);
            assert_eq!(trace.events(), 2000, "budget {budget}");
            // Validation survives a full serialize → parse round-trip.
            let back = Trace::from_bytes(trace.as_bytes().to_vec()).expect("revalidates");
            assert_eq!(
                back.decode_all().expect("decodes"),
                records,
                "seed {seed} budget {budget}"
            );
            rendered.push(format!("{}", trace_stats(&trace).expect("stats")));
        }
        // Stats are a pure function of the record stream, not the blocking.
        assert!(
            rendered.windows(2).all(|w| w[0] == w[1]),
            "stats differ across block budgets (seed {seed})"
        );
        // The legacy writer agrees record-for-record.
        let v1 = {
            let rec = RecorderV1::new(&meta());
            let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
            for r in &records {
                sink.record(r.at, r.seq, &r.event);
            }
            rec.finish()
        };
        assert_eq!(v1.wire(), TraceWire::V1);
        assert_eq!(v1.decode_all().expect("v1 decodes"), records);
    }
}

/// Re-seals the outer SHA-256 after in-place tampering, so validation
/// reaches the layer under test instead of stopping at the file hash.
fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 32;
    let digest = sha256(&bytes[..body]);
    bytes[body..].copy_from_slice(&digest);
}

#[test]
fn tampered_traces_yield_distinct_diagnostics() {
    // Small single-block trace: all varints under test are one byte.
    let records = random_stream(9, 3);
    let trace = record_v2(&records, 100);
    assert_eq!(trace.blocks().len(), 1);
    let entry = &trace.blocks()[0];
    assert!(entry.offset < 128 && entry.body_len < 120, "{entry:?}");

    // (1) Flipped body byte, outer hash NOT resealed: the file-level
    // integrity check fires first.
    let mut bytes = trace.as_bytes().to_vec();
    let body_start = entry.offset as usize + 2; // marker + 1-byte len varint
    bytes[body_start + 5] ^= 0xA5;
    let e1 = Trace::from_bytes(bytes.clone()).expect_err("seal must catch the flip");
    assert!(matches!(e1, TraceError::HashMismatch), "{e1}");

    // (2) Same flip with the outer hash resealed: structural validation
    // passes (the index is intact) but the per-block digest catches the
    // corruption at decode time, naming the block.
    reseal(&mut bytes);
    let forged = Trace::from_bytes(bytes).expect("structurally valid");
    let e2 = forged.decode_all().expect_err("block digest must catch it");
    assert!(
        matches!(e2, TraceError::BadBlockChecksum { block: 0 }),
        "{e2}"
    );
    assert_eq!(e2.to_string(), "block 0 checksum mismatch: block corrupt");
    // Stats and diff surface the same diagnostic instead of bad numbers.
    assert!(trace_stats(&forged).is_err());

    // (3) A frame that claims more bytes than the record region holds
    // (frame varint and index entry bumped consistently, resealed):
    // the truncated-block diagnostic, distinct from (2).
    let mut bytes = trace.as_bytes().to_vec();
    let frame_len_pos = entry.offset as usize + 1;
    assert_eq!(bytes[frame_len_pos] as u64, entry.body_len);
    bytes[frame_len_pos] += 4;
    let tail = bytes.len() - (8 + 8 + 32);
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[tail..tail + 8]);
    let index_offset = u64::from_le_bytes(raw) as usize;
    // Index layout: END, varint n_blocks (=1), varint offset, varint len.
    let index_len_pos = index_offset + 3;
    assert_eq!(bytes[index_len_pos] as u64, entry.body_len);
    bytes[index_len_pos] += 4;
    reseal(&mut bytes);
    let e3 = Trace::from_bytes(bytes).expect_err("frame overruns the region");
    assert!(
        matches!(e3, TraceError::TruncatedBlock { block: 0 }),
        "{e3}"
    );
    assert_eq!(e3.to_string(), "trace truncated inside block 0");

    // (4) A tail chopped below the minimum trailer size is a fourth
    // distinct diagnostic (a *partial* chop is caught by the seal, (1)).
    let mut bytes = trace.as_bytes().to_vec();
    bytes.truncate(40);
    let e4 = Trace::from_bytes(bytes).expect_err("chopped");
    assert!(matches!(e4, TraceError::Truncated), "{e4}");

    let msgs = [
        e1.to_string(),
        e2.to_string(),
        e3.to_string(),
        e4.to_string(),
    ];
    for i in 0..msgs.len() {
        for j in i + 1..msgs.len() {
            assert_ne!(msgs[i], msgs[j], "diagnostics must be distinct");
        }
    }
}

/// A real (shrunken) scenario run for the migration and analytics tests.
fn scenario_trace(name: &str, seed: u64) -> Trace {
    let entry = ScenarioRegistry::standard();
    let entry = entry.get(name).expect("registered");
    let mut s: Scenario = entry.build(Scale::Quick);
    s.cfg.n_peers = 30;
    s.cfg.n_aus = 2;
    s.run_length = Duration::from_days(150);
    let meta = TraceMeta {
        scenario: name.to_string(),
        scale: "quick".to_string(),
        seed,
        run_length_ms: s.run_length.as_millis(),
    };
    run_once_recorded(&s, seed, &meta).2
}

#[test]
fn converting_v1_preserves_stats_and_shrinks() {
    let v2 = scenario_trace("baseline", 7);
    let records = v2.decode_all().expect("decodes");
    assert!(records.len() > 1000, "need a substantial stream");

    // The same stream through the legacy flat writer.
    let v1 = {
        let rec = RecorderV1::new(&v2.meta().expect("meta"));
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        for r in &records {
            sink.record(r.at, r.seq, &r.event);
        }
        rec.finish()
    };

    // Migration is canonical: converting the v1 recording reproduces the
    // directly-recorded v2 bytes exactly (same content hash, same blocks).
    let converted = v1.to_v2().expect("converts");
    assert_eq!(converted.as_bytes(), v2.as_bytes());

    // Every statistic survives the wire change; only the wire tag moves.
    let mut sv1 = trace_stats(&v1).expect("v1 stats");
    let sv2 = trace_stats(&converted).expect("v2 stats");
    assert_eq!(sv1.wire, TraceWire::V1);
    assert_eq!(sv2.wire, TraceWire::V2);
    sv1.wire = TraceWire::V2;
    assert_eq!(sv1.to_json(), sv2.to_json());

    // The columnar wire carries its seek index *and* still shrinks the
    // file substantially (the ≥4x target is asserted at campaign scale in
    // the bench suite; real quick-scale streams must manage ≥2x).
    let ratio = v1.as_bytes().len() as f64 / v2.as_bytes().len() as f64;
    assert!(
        ratio >= 2.0,
        "LTRC2 must be at least 2x smaller than LTRC1, got {ratio:.2}x \
         ({} -> {} bytes)",
        v1.as_bytes().len(),
        v2.as_bytes().len()
    );
}

#[test]
fn analytics_are_thread_invariant_on_real_traces() {
    let a = scenario_trace("pipe-stoppage", 7);
    let b = scenario_trace("pipe-stoppage", 8);
    let stats1 = format!("{}", trace_stats_threaded(&a, 1).expect("stats"));
    let json1 = trace_stats_threaded(&a, 1).expect("stats").to_json();
    let diff1 = format!("{}", diff_traces_threaded(&a, &b, 1).expect("diff"));
    let csv1 = export_csv(&a, 1, 7).expect("export");
    for threads in [2, 3, 8] {
        assert_eq!(
            stats1,
            format!("{}", trace_stats_threaded(&a, threads).expect("stats")),
            "stats rendering must not depend on --threads"
        );
        assert_eq!(
            json1,
            trace_stats_threaded(&a, threads).expect("stats").to_json()
        );
        assert_eq!(
            diff1,
            format!("{}", diff_traces_threaded(&a, &b, threads).expect("diff")),
            "diff rendering must not depend on --threads"
        );
        assert_eq!(csv1, export_csv(&a, threads, 7).expect("export"));
    }
    // The JSON stats carry the wire tag (regression: it used to be absent).
    assert!(json1.contains("\"wire\": \"LTRC2\""), "{json1}");
    // Self-diff across wires: identical records, different bytes.
    let a1 = {
        let rec = RecorderV1::new(&a.meta().expect("meta"));
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        for r in a.decode_all().expect("decodes") {
            sink.record(r.at, r.seq, &r.event);
        }
        rec.finish()
    };
    let self_diff = diff_traces_threaded(&a, &a1, 4).expect("mixed-wire diff");
    assert!(self_diff.is_identical(), "{self_diff}");
}

#[test]
fn sweep_record_retains_per_seed_traces_that_aggregate() {
    use lockss::experiments::sweep::run_sweep_observed;

    let entry = ScenarioRegistry::standard();
    let entry = entry.get("baseline").expect("registered");
    let mut s: Scenario = entry.build(Scale::Quick);
    s.cfg.n_peers = 25;
    s.cfg.n_aus = 1;
    s.run_length = Duration::from_days(60);
    let dir = std::env::temp_dir().join(format!("lockss-trace-v2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let seeds = [1u64, 2, 3];
    let report = run_sweep_observed(
        &s,
        "baseline",
        "quick",
        &seeds,
        2,
        None,
        None,
        None,
        Some(&dir),
    );
    assert_eq!(report.completed.len(), 3);

    let mut per_trace = Vec::new();
    for seed in seeds {
        let path = dir.join(format!("trace-baseline-s{seed}.bin"));
        let trace = Trace::read_from(&path)
            .unwrap_or_else(|e| panic!("sweep --record must write {}: {e}", path.display()));
        assert_eq!(trace.wire(), TraceWire::V2);
        let m = trace.meta().expect("meta");
        assert_eq!((m.seed, m.scenario.as_str()), (seed, "baseline"));
        assert!(trace.events() > 0, "seed {seed} recorded an empty stream");
        per_trace.push((
            format!("s{seed}"),
            trace_stats_threaded(&trace, 2).expect("stats"),
        ));
    }
    let total: u64 = per_trace.iter().map(|(_, s)| s.events).sum();
    let agg = AggregateStats::new(per_trace);
    assert_eq!(agg.total_events(), total);
    let rendered = format!("{agg}");
    assert!(
        rendered.contains("aggregate stats over 3 trace(s)"),
        "{rendered}"
    );
    assert!(agg.to_json().contains("\"aggregate\": true"));
    let _ = std::fs::remove_dir_all(&dir);
}

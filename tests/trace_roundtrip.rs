//! Record→replay round-trips for the whole scenario registry.
//!
//! The acceptance bar for the trace subsystem: recording a run and
//! replaying it must report **zero divergence** for every registered
//! scenario, and a deliberately perturbed replay (different seed) must
//! report the first divergence with its time and event kind. Worlds are
//! shrunk the same way `tests/determinism.rs` shrinks them so the whole
//! registry round-trips in CI time.

use lockss::experiments::runner::{replay_once, run_once, run_once_recorded};
use lockss::experiments::scenario::Scenario;
use lockss::experiments::{Scale, ScenarioRegistry};
use lockss::sim::Duration;
use lockss::trace::{trace_stats, TraceMeta};

fn shrunken_registry_jobs() -> Vec<(String, Scenario)> {
    ScenarioRegistry::standard()
        .entries()
        .iter()
        .map(|e| {
            let mut s = e.build(Scale::Quick);
            s.cfg.n_peers = 30;
            s.cfg.n_aus = 2;
            s.run_length = Duration::from_days(150);
            (e.name().to_string(), s)
        })
        .collect()
}

fn meta_for(name: &str, seed: u64, s: &Scenario) -> TraceMeta {
    TraceMeta {
        scenario: name.to_string(),
        scale: "quick".to_string(),
        seed,
        run_length_ms: s.run_length.as_millis(),
    }
}

#[test]
fn every_registered_scenario_replays_with_zero_divergence() {
    for (name, s) in shrunken_registry_jobs() {
        let (summary, _phases, trace) = run_once_recorded(&s, 7, &meta_for(&name, 7, &s));
        let report = replay_once(&s, 7, &trace)
            .unwrap_or_else(|e| panic!("scenario '{name}' replay failed to decode: {e}"));
        assert!(
            report.is_equivalent(),
            "scenario '{name}' diverged on faithful replay:\n{report}"
        );
        assert!(
            report.events_matched > 0,
            "scenario '{name}' recorded an empty stream"
        );
        // Recording must not have perturbed the run.
        assert_eq!(
            summary,
            run_once(&s, 7),
            "scenario '{name}': traced run differs from untraced run"
        );
    }
}

#[test]
fn perturbed_replay_reports_time_and_kind_of_the_fork() {
    let (name, s) = shrunken_registry_jobs().remove(0);
    let (_, _, trace) = run_once_recorded(&s, 7, &meta_for(&name, 7, &s));
    let report = replay_once(&s, 8, &trace).expect("decodes");
    assert!(!report.is_equivalent(), "a different seed must diverge");
    let divergence = report.divergence.as_ref().expect("has a divergence");
    let rendered = format!("{report}");
    // The context must name a record index, a simulated time, and an
    // event kind.
    assert!(
        rendered.contains(&format!("record #{}", divergence.index)),
        "{rendered}"
    );
    assert!(rendered.contains("day "), "{rendered}");
    let kind_named = divergence
        .expected
        .iter()
        .chain(divergence.actual.iter())
        .any(|r| rendered.contains(r.event.kind().label()));
    assert!(
        kind_named,
        "divergence must name the event kind: {rendered}"
    );
}

#[test]
fn attacked_traces_carry_adversary_provenance() {
    // One effortless attack (timer-driven, suppressions), one effortful
    // (bogus polls), one churn attack (provenance on depart/rejoin).
    for (name, expected_label) in [
        ("pipe-stoppage", "pipe-stoppage/stop"),
        ("brute-force-intro", "brute-force/poll"),
        ("churn-storm", "churn-storm/depart"),
        ("mobile-takeover-light", "mobile-takeover/compromise"),
        ("mobile-takeover-light", "mobile-takeover/cure"),
    ] {
        let (_, s) = shrunken_registry_jobs()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("registered");
        let (_, _, trace) = run_once_recorded(&s, 7, &meta_for(name, 7, &s));
        let stats = trace_stats(&trace).expect("stats decode");
        assert!(
            stats.count(lockss::core::TraceEventKind::AdversaryAction) > 0,
            "scenario '{name}' recorded no adversary actions"
        );
        let has_label = trace.decode_all().expect("decodes").iter().any(|r| {
            matches!(
                &r.event,
                lockss::core::TraceEvent::AdversaryAction { label, .. } if label == expected_label
            )
        });
        assert!(
            has_label,
            "scenario '{name}' missing '{expected_label}' provenance"
        );
    }
}

/// The compromise lifecycle lands in the trace as first-class events:
/// takeovers, cures, and (under a heavy enough campaign) poisoned
/// repairs, all of which survive the wire round-trip.
#[test]
fn mobile_takeover_traces_carry_the_compromise_lifecycle() {
    use lockss::core::TraceEventKind;
    let (_, s) = shrunken_registry_jobs()
        .into_iter()
        .find(|(n, _)| *n == "mobile-takeover-heavy")
        .expect("registered");
    let (_, _, trace) = run_once_recorded(&s, 7, &meta_for("mobile-takeover-heavy", 7, &s));
    let stats = trace_stats(&trace).expect("stats decode");
    assert!(
        stats.count(TraceEventKind::Compromise) > 0,
        "heavy takeover recorded no compromises"
    );
    assert!(
        stats.count(TraceEventKind::Cure) > 0,
        "migrations must cure the previous victim set"
    );
    assert!(
        stats.count(TraceEventKind::Cure) <= stats.count(TraceEventKind::Compromise),
        "cures can only undo compromises"
    );
    assert!(
        stats.count(TraceEventKind::PoisonedRepair) > 0,
        "a budget-8 takeover must poison at least one repair in 150 days"
    );
}

#[test]
fn suppression_verdicts_land_in_the_trace() {
    let (_, s) = shrunken_registry_jobs()
        .into_iter()
        .find(|(n, _)| *n == "pipe-stoppage")
        .expect("registered");
    let (_, _, trace) = run_once_recorded(&s, 7, &meta_for("pipe-stoppage", 7, &s));
    let stats = trace_stats(&trace).expect("stats");
    assert!(
        stats.suppressed_sends > 0,
        "a total blackout must suppress sends at the source"
    );
}

//! Integration tests of the real-cryptography datapath across crates:
//! multi-voter landslide evaluation with genuine hashes, proofs, repairs,
//! and receipts.

use lockss::core::realproto::{RealParams, RealPoller, RealVoter};
use lockss::core::types::Identity;
use lockss::crypto::sha256::Digest;

/// Runs a full multi-voter real-mode poll: solicits `n` voters, evaluates
/// every vote, repairs blocks where a landslide majority disagrees with
/// the poller, and delivers receipts. Returns (repaired blocks,
/// disagreeing voters after repair).
fn landslide_poll(
    poller: &mut RealPoller,
    voters: &mut [RealVoter],
    nonce: &[u8],
    max_disagree: usize,
) -> (u32, usize) {
    // Solicit everyone.
    let mut votes = Vec::new();
    for v in voters.iter_mut() {
        let (challenge, intro) = poller.solicit_effort(nonce, v.identity);
        let vote = v.solicit(&challenge, &intro, nonce).expect("honest voter");
        votes.push(vote);
    }

    // Repair loop: while a landslide majority disagrees with us at our
    // first divergent block, fetch the block from an agreeing-with-majority
    // voter and retry.
    let mut repaired = 0;
    loop {
        let evals: Vec<_> = votes
            .iter()
            .map(|v| poller.evaluate(nonce, v).expect("valid vote"))
            .collect();
        let disagreeing = evals
            .iter()
            .filter(|e| e.first_disagreement.is_some())
            .count();
        if disagreeing <= max_disagree {
            // Landslide win: receipts to everyone.
            for (v, e) in voters.iter_mut().zip(evals.iter()) {
                v.accept_receipt(&e.receipt).expect("receipt matches");
            }
            return (repaired, disagreeing);
        }
        // Landslide loss at some block: the earliest divergence reported by
        // the majority is our own damage.
        let block = evals
            .iter()
            .filter_map(|e| e.first_disagreement)
            .min()
            .expect("some disagreement");
        let supplier = voters
            .iter()
            .find(|v| !v.replica.is_damaged(block))
            .expect("an intact voter exists");
        let content = supplier.serve_repair(block).expect("intact block");
        poller.apply_repair(block, &content).expect("valid repair");
        repaired += 1;
    }
}

fn build(n_voters: usize) -> (RealPoller, Vec<RealVoter>, RealParams) {
    let params = RealParams::small();
    let poller = RealPoller::new(Identity::loyal(0), 1000, &params);
    let voters = (0..n_voters)
        .map(|i| RealVoter::new(Identity::loyal(1 + i as u32), 2000 + i as u64, &params))
        .collect();
    (poller, voters, params)
}

#[test]
fn all_intact_poll_agrees() {
    let (mut poller, mut voters, _) = build(10);
    let (repaired, disagreeing) = landslide_poll(&mut poller, &mut voters, b"poll-1", 3);
    assert_eq!(repaired, 0);
    assert_eq!(disagreeing, 0);
}

#[test]
fn damaged_poller_repaired_by_landslide() {
    let (mut poller, mut voters, _) = build(10);
    poller.replica.damage(1);
    poller.replica.damage(4);
    let (repaired, disagreeing) = landslide_poll(&mut poller, &mut voters, b"poll-2", 3);
    assert_eq!(repaired, 2);
    assert_eq!(disagreeing, 0);
    assert!(poller.replica.is_intact());
}

#[test]
fn few_damaged_voters_do_not_trigger_repairs() {
    let (mut poller, mut voters, _) = build(10);
    voters[0].replica.damage(3);
    voters[1].replica.damage(5);
    let (repaired, disagreeing) = landslide_poll(&mut poller, &mut voters, b"poll-3", 3);
    assert_eq!(repaired, 0, "their damage is not our problem");
    assert_eq!(disagreeing, 2, "they disagree, below the landslide margin");
    assert!(poller.replica.is_intact());
}

#[test]
fn mixed_damage_converges_to_canonical() {
    let (mut poller, mut voters, _) = build(12);
    poller.replica.damage(2);
    voters[3].replica.damage(2); // same block damaged at a voter
    voters[7].replica.damage(6);
    let (repaired, disagreeing) = landslide_poll(&mut poller, &mut voters, b"poll-4", 3);
    assert_eq!(repaired, 1);
    assert!(poller.replica.is_intact());
    // Voters 3 and 7 still disagree (their own damage), below the margin.
    assert_eq!(disagreeing, 2);
}

#[test]
fn votes_are_voter_specific_but_intact_votes_agree() {
    let (poller, mut voters, _) = build(3);
    let nonce = b"poll-5";
    let mut all_hashes: Vec<Vec<Digest>> = Vec::new();
    for v in voters.iter_mut() {
        let (challenge, intro) = poller.solicit_effort(nonce, v.identity);
        let vote = v.solicit(&challenge, &intro, nonce).expect("vote");
        all_hashes.push(vote.hashes);
    }
    // All intact replicas produce identical running hashes under the same
    // nonce (that is what makes tallying possible)...
    assert_eq!(all_hashes[0], all_hashes[1]);
    assert_eq!(all_hashes[1], all_hashes[2]);
}

#[test]
fn receipts_are_per_voter_unforgeable() {
    let (mut poller, mut voters, _) = build(2);
    let nonce = b"poll-6";
    let (c0, i0) = poller.solicit_effort(nonce, voters[0].identity);
    let v0 = voters[0].solicit(&c0, &i0, nonce).expect("vote 0");
    let (c1, i1) = poller.solicit_effort(nonce, voters[1].identity);
    let v1 = voters[1].solicit(&c1, &i1, nonce).expect("vote 1");
    let e0 = poller.evaluate(nonce, &v0).expect("eval 0");
    let e1 = poller.evaluate(nonce, &v1).expect("eval 1");
    assert_ne!(e0.receipt, e1.receipt, "receipts are per-voter");
    // Cross-delivery must fail.
    assert!(voters[0].accept_receipt(&e1.receipt).is_err());
    // ...and consume the expectation, so even the right receipt now fails
    // (the voter has already penalized the poller).
    assert!(voters[0].accept_receipt(&e0.receipt).is_err());
    // Voter 1 still accepts its own.
    assert!(voters[1].accept_receipt(&e1.receipt).is_ok());
}

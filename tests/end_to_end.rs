//! Cross-crate integration tests: full worlds, attacks, and the §6.1
//! metrics, at sizes small enough for the test suite.

use lockss::adversary::{AdmissionFlood, BruteForce, Defection, PipeStoppage, VoteFlood};
use lockss::core::{World, WorldConfig};
use lockss::effort::CostModel;
use lockss::metrics::Summary;
use lockss::sim::{Duration, Engine, SimTime};
use lockss::storage::AuSpec;

fn test_config(seed: u64) -> WorldConfig {
    let au_spec = AuSpec {
        size_bytes: 50_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = WorldConfig {
        n_peers: 40,
        n_aus: 3,
        au_spec,
        mtbf_years: 1.0,
        seed,
        ..WorldConfig::default()
    };
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    cfg.protocol.poll_interval = Duration::from_days(30);
    cfg.protocol.grade_decay = Duration::from_days(60);
    cfg
}

fn run_with(
    cfg: WorldConfig,
    adversary: Option<Box<dyn lockss::core::Adversary>>,
    days: u64,
) -> (Summary, World) {
    let mut world = World::new(cfg);
    if let Some(a) = adversary {
        world.install_adversary(a);
    }
    let mut eng = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + Duration::from_days(days);
    eng.run_until(&mut world, end);
    (world.metrics.summarize(end), world)
}

#[test]
fn baseline_preserves_content() {
    let (summary, world) = run_with(test_config(1), None, 360);
    assert!(summary.successful_polls > 200, "{summary:?}");
    assert!(
        summary.access_failure_probability < 0.02,
        "afp {}",
        summary.access_failure_probability
    );
    assert_eq!(summary.alarms, 0);
    // Most damage is repaired by run end.
    let damaged: usize = world.peers.total_damaged();
    assert!(damaged <= 3, "{damaged} replicas still damaged");
}

#[test]
fn pipe_stoppage_increases_failure_monotonically_in_coverage() {
    let mut afps = Vec::new();
    for coverage in [0.0f64, 0.5, 1.0] {
        // Average over seeds to tame the small-world noise.
        let mut total = 0.0;
        for seed in 1..=3 {
            let adversary: Option<Box<dyn lockss::core::Adversary>> = if coverage > 0.0 {
                Some(Box::new(PipeStoppage::new(coverage, 60)))
            } else {
                None
            };
            let (s, _) = run_with(test_config(seed), adversary, 360);
            total += s.access_failure_probability;
        }
        afps.push(total / 3.0);
    }
    assert!(
        afps[2] > afps[0],
        "full-coverage stoppage must hurt: {afps:?}"
    );
}

#[test]
fn full_stoppage_blocks_all_polls_while_active() {
    let cfg = test_config(5);
    let adv = PipeStoppage::new(1.0, 400); // longer than the run
    let (summary, _) = run_with(cfg, Some(Box::new(adv)), 200);
    assert_eq!(
        summary.successful_polls, 0,
        "nothing can succeed under total stoppage"
    );
    assert!(summary.failed_polls > 0);
}

#[test]
fn admission_flood_costs_friction_not_content() {
    let (base, _) = run_with(test_config(7), None, 360);
    let (attacked, _) = run_with(
        test_config(7),
        Some(Box::new(AdmissionFlood::new(1.0, 400))),
        360,
    );
    let friction = attacked
        .coefficient_of_friction(&base)
        .expect("friction defined");
    // At this toy size the flood's marginal cost is small; the defense
    // claim is that it stays *bounded* (the figure-scale runs show the
    // 1.3–1.7x friction of Fig. 8). Allow noise below 1.
    assert!(friction > 0.9, "friction suspiciously low: {friction}");
    assert!(friction < 3.0, "friction must stay bounded: {friction}");
    let delay = attacked.delay_ratio(&base).expect("delay defined");
    assert!(delay < 1.6, "polls keep succeeding: {delay}");
    // Content is unaffected.
    assert!(attacked.access_failure_probability < 0.02);
}

#[test]
fn brute_force_pays_at_least_defender_scale() {
    let (attacked, _) = run_with(
        test_config(9),
        Some(Box::new(BruteForce::new(Defection::Remaining))),
        240,
    );
    assert!(attacked.adversary_effort_secs > 0.0);
    let ratio = attacked.cost_ratio().expect("cost ratio defined");
    // Effort balancing: the attacker cannot get a free ride.
    assert!(ratio > 0.5, "cost ratio {ratio}");
}

#[test]
fn brute_force_defection_orderings() {
    let (base, _) = run_with(test_config(11), None, 240);
    let mut results = Vec::new();
    for d in [Defection::Intro, Defection::Remaining, Defection::None_] {
        let (s, _) = run_with(test_config(11), Some(Box::new(BruteForce::new(d))), 240);
        results.push((d, s));
    }
    let friction = |i: usize| {
        results[i]
            .1
            .coefficient_of_friction(&base)
            .expect("friction")
    };
    // INTRO desertion wastes the least victim effort.
    assert!(friction(0) < friction(1), "INTRO < REMAINING");
    assert!(friction(0) < friction(2), "INTRO < NONE");
    // All strategies leave content essentially intact.
    for (_, s) in &results {
        assert!(s.access_failure_probability < 0.05);
    }
}

#[test]
fn vote_flood_is_free_to_ignore() {
    let (base, _) = run_with(test_config(13), None, 240);
    let (attacked, _) = run_with(
        test_config(13),
        Some(Box::new(VoteFlood::new(20, Duration::HOUR))),
        240,
    );
    let friction = attacked
        .coefficient_of_friction(&base)
        .expect("friction defined");
    // Unsolicited votes are ignored before any hashing: no friction.
    assert!(
        (friction - 1.0).abs() < 0.05,
        "vote flood must be free to ignore, friction {friction}"
    );
    let delay = attacked.delay_ratio(&base).expect("delay");
    assert!((delay - 1.0).abs() < 0.1, "delay {delay}");
}

#[test]
fn damage_without_repair_accumulates() {
    // Sanity check on the damage model: stop all communication so repairs
    // are impossible, and watch the damaged fraction grow.
    let cfg = test_config(15);
    let adv = PipeStoppage::new(1.0, 10_000);
    let (summary, world) = run_with(cfg, Some(Box::new(adv)), 720);
    let damaged: usize = world.peers.total_damaged();
    assert!(damaged > 0, "damage must accumulate unrepaired");
    assert!(summary.access_failure_probability > 1e-3);
}

#[test]
fn seeds_reproduce_exactly() {
    let (a, _) = run_with(test_config(21), None, 240);
    let (b, _) = run_with(test_config(21), None, 240);
    assert_eq!(a.successful_polls, b.successful_polls);
    assert_eq!(a.failed_polls, b.failed_polls);
    assert_eq!(a.access_failure_probability, b.access_failure_probability);
    assert_eq!(a.loyal_effort_secs, b.loyal_effort_secs);
}

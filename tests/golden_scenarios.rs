//! Golden equivalence: the declarative scenario corpus reproduces the
//! pre-refactor registry exactly.
//!
//! The `legacy` module below is the verbatim builder code that
//! `ScenarioRegistry::standard()` used before the registry became
//! spec-backed (PR 6). For every checked-in `scenarios/*.json` file, the
//! spec-built scenario must equal the legacy-built one by structural
//! equality at every scale. Because a run is a pure function of
//! `(scenario, seed)` (see `tests/determinism.rs`), equal scenarios
//! produce byte-identical `results/scenario-*.json` — the quick-scale
//! summary spot-checks at the bottom pin that implication directly.

use lockss::experiments::runner::run_once;
use lockss::experiments::{Scale, ScenarioRegistry};

/// The pre-refactor builders, copied verbatim from `registry.rs` as it
/// stood before the declarative-scenario refactor. Do not "improve" this
/// module: it is a fixture.
mod legacy {
    use lockss::adversary::Defection;
    use lockss::experiments::scenario::{phased, AttackSpec, Scenario};
    use lockss::experiments::Scale;
    use lockss::sim::Duration;

    fn scale_world(scale: Scale, n_peers: usize, attack: AttackSpec) -> Scenario {
        let mut s = Scenario::attacked(scale, 1, attack);
        s.cfg.n_peers = n_peers;
        s.cfg.link_mix = Some([0.6, 0.3, 0.1]);
        s.run_length = match scale {
            Scale::Quick => Duration::from_days(200),
            Scale::Default | Scale::Paper => Duration::from_days(540),
        };
        s
    }

    /// `(name, builder)` for every pre-refactor registry entry, in
    /// registration order.
    #[allow(clippy::type_complexity)]
    pub fn builders() -> Vec<(&'static str, fn(Scale) -> Scenario)> {
        vec![
            ("baseline", |scale| {
                Scenario::baseline(scale, scale.small_collection())
            }),
            ("baseline-large", |scale| {
                Scenario::baseline(scale, scale.large_collection())
            }),
            ("pipe-stoppage", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::PipeStoppage {
                        coverage: 1.0,
                        days: 90,
                    },
                )
            }),
            ("pipe-stoppage-partial", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::PipeStoppage {
                        coverage: 0.4,
                        days: 30,
                    },
                )
            }),
            ("admission-flood", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::AdmissionFlood {
                        coverage: 1.0,
                        days: 720,
                    },
                )
            }),
            ("admission-flood-partial", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::AdmissionFlood {
                        coverage: 0.4,
                        days: 90,
                    },
                )
            }),
            ("brute-force-intro", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::Intro,
                    },
                )
            }),
            ("brute-force-remaining", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::Remaining,
                    },
                )
            }),
            ("brute-force-none", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::None_,
                    },
                )
            }),
            ("vote-flood", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::VoteFlood {
                        votes_per_wave: 4,
                        wave_hours: 6,
                    },
                )
            }),
            ("churn-storm", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::ChurnStorm {
                        coverage: 0.5,
                        duty: 0.7,
                    },
                )
            }),
            ("sybil-ramp", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::SybilRamp {
                        step: 0.25,
                        step_days: 45,
                    },
                )
            }),
            ("stoppage-then-flood", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::PipeStoppage {
                                coverage: 1.0,
                                days: 60,
                            },
                        ),
                        phased(
                            90,
                            AttackSpec::AdmissionFlood {
                                coverage: 1.0,
                                days: 360,
                            },
                        ),
                    ]),
                )
            }),
            ("storm-over-ramp", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::ChurnStorm {
                                coverage: 0.5,
                                duty: 0.7,
                            },
                        ),
                        phased(
                            0,
                            AttackSpec::SybilRamp {
                                step: 0.25,
                                step_days: 45,
                            },
                        ),
                    ]),
                )
            }),
            ("stoppage-escalation", |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::PipeStoppage {
                                coverage: 0.4,
                                days: 30,
                            },
                        ),
                        phased(
                            120,
                            AttackSpec::PipeStoppage {
                                coverage: 1.0,
                                days: 60,
                            },
                        ),
                    ]),
                )
            }),
            ("scale-10k-baseline", |scale| {
                scale_world(scale, 10_000, AttackSpec::None)
            }),
            ("scale-10k-churn-storm", |scale| {
                scale_world(
                    scale,
                    10_000,
                    AttackSpec::ChurnStorm {
                        coverage: 0.3,
                        duty: 0.5,
                    },
                )
            }),
            ("scale-50k-attrition", |scale| {
                scale_world(
                    scale,
                    50_000,
                    AttackSpec::AdmissionFlood {
                        coverage: 0.4,
                        days: 90,
                    },
                )
            }),
        ]
    }
}

#[test]
fn spec_corpus_covers_exactly_the_legacy_registry() {
    // Scenarios added after the refactor (the mobile-takeover family) may
    // interleave, but every pre-refactor scenario must still be present,
    // in the legacy registration order.
    let registry = ScenarioRegistry::standard();
    let names = registry.names();
    let mut cursor = names.iter();
    for (legacy_name, _) in legacy::builders() {
        assert!(
            cursor.any(|n| *n == legacy_name),
            "corpus must list pre-refactor scenario '{legacy_name}' in the legacy order \
             (registry: {names:?})"
        );
    }
}

#[test]
fn every_spec_scenario_equals_its_legacy_builder() {
    let registry = ScenarioRegistry::standard();
    for (name, builder) in legacy::builders() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let from_spec = registry
                .build(name, scale)
                .unwrap_or_else(|| panic!("'{name}' missing from the spec corpus"));
            let from_code = builder(scale);
            assert_eq!(
                from_spec, from_code,
                "'{name}' at {scale:?}: spec-built scenario diverges from the \
                 pre-refactor builder"
            );
        }
    }
}

/// Structural equality plus determinism implies byte-identical result
/// files; pin the implication by comparing quick-scale summaries for a
/// representative slice (a baseline, a primitive attack, a composite).
#[test]
fn spec_and_legacy_summaries_are_byte_identical_at_quick_scale() {
    let registry = ScenarioRegistry::standard();
    for (name, builder) in legacy::builders() {
        if !matches!(
            name,
            "baseline" | "pipe-stoppage-partial" | "stoppage-then-flood"
        ) {
            continue;
        }
        let mut from_spec = registry.build(name, Scale::Quick).expect("registered");
        let mut from_code = builder(Scale::Quick);
        // Shrink like tests/determinism.rs so the slice stays CI-fast.
        for s in [&mut from_spec, &mut from_code] {
            s.cfg.n_peers = 30;
            s.cfg.n_aus = 2;
            s.run_length = lockss::sim::Duration::from_days(150);
        }
        assert_eq!(
            run_once(&from_spec, 7),
            run_once(&from_code, 7),
            "'{name}': summaries diverge"
        );
    }
}

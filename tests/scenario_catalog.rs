//! Keeps the README's scenario catalog in sync with the registry: the
//! table between the `scenario-catalog` markers must be exactly what
//! `ScenarioRegistry::catalog_markdown()` generates today.

use lockss::experiments::ScenarioRegistry;

#[test]
fn readme_catalog_matches_registry() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let begin = "<!-- scenario-catalog:begin -->";
    let end = "<!-- scenario-catalog:end -->";
    let start = readme
        .find(begin)
        .expect("README carries the scenario-catalog begin marker")
        + begin.len();
    let stop = readme
        .find(end)
        .expect("README carries the scenario-catalog end marker");
    let in_readme = readme[start..stop].trim();
    let generated = ScenarioRegistry::standard().catalog_markdown();
    assert_eq!(
        in_readme,
        generated.trim(),
        "README scenario catalog is stale — replace the table between the \
         markers with ScenarioRegistry::catalog_markdown()"
    );
}

#[test]
fn catalog_names_resolve_in_the_registry() {
    let registry = ScenarioRegistry::standard();
    for name in registry.names() {
        assert!(registry.get(name).is_some());
    }
}

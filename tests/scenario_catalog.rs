//! Keeps the README's scenario catalog in sync with the registry: the
//! table between the `scenario-catalog` markers must be exactly what
//! `ScenarioRegistry::catalog_markdown()` generates today.

use lockss::experiments::ScenarioRegistry;

#[test]
fn readme_catalog_matches_registry() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let begin = "<!-- scenario-catalog:begin -->";
    let end = "<!-- scenario-catalog:end -->";
    let start = readme
        .find(begin)
        .expect("README carries the scenario-catalog begin marker")
        + begin.len();
    let stop = readme
        .find(end)
        .expect("README carries the scenario-catalog end marker");
    let in_readme = readme[start..stop].trim();
    let generated = ScenarioRegistry::standard().catalog_markdown();
    assert_eq!(
        in_readme,
        generated.trim(),
        "README scenario catalog is stale — replace the table between the \
         markers with ScenarioRegistry::catalog_markdown()"
    );
}

#[test]
fn catalog_names_resolve_in_the_registry() {
    let registry = ScenarioRegistry::standard();
    for name in registry.names() {
        assert!(registry.get(name).is_some());
    }
}

/// The mobile-takeover scenario family is registered, carries its
/// mobile-adversary paper references, and shows up in the catalog table.
#[test]
fn mobile_family_is_cataloged_with_paper_refs() {
    let registry = ScenarioRegistry::standard();
    let md = registry.catalog_markdown();
    for name in [
        "mobile-takeover-light",
        "mobile-takeover-heavy",
        "mobile-recovery-race",
    ] {
        let entry = registry
            .get(name)
            .unwrap_or_else(|| panic!("'{name}' missing from the registry"));
        assert!(
            entry.paper_ref().contains("§4.3"),
            "'{name}' paper_ref must cite the repair machinery (§4.3), got '{}'",
            entry.paper_ref()
        );
        let row = format!("| `{name}` | {} |", entry.paper_ref());
        assert!(md.contains(&row), "catalog row for '{name}' is stale");
    }
}

//! Cross-check between the on-disk format constants in source and the
//! normative spec in `docs/FORMATS.md`.
//!
//! Two directions: every format version string or trace magic declared
//! in source must appear verbatim in the spec, and every version token
//! the spec names must be backed by a declaration in source. The same
//! contract runs as greps in the CI docs job; this test is the local,
//! `cargo test`-visible form of it.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Extracts every `lockss-…-vN` version tag from `text`.
fn version_tags(text: &str) -> BTreeSet<String> {
    let mut tags = BTreeSet::new();
    let bytes = text.as_bytes();
    for (start, _) in text.match_indices("lockss-") {
        let mut end = start + "lockss-".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        let token = &text[start..end];
        // Only `…-v<digits>` tokens are format versions; crate names
        // like `lockss-trace` are not.
        if let Some(pos) = token.rfind("-v") {
            let version = &token[pos + 2..];
            if !version.is_empty() && version.bytes().all(|b| b.is_ascii_digit()) {
                tags.insert(token.to_string());
            }
        }
    }
    tags
}

/// Extracts every `LTRC<digits>` trace magic label from `text`.
fn magic_labels(text: &str) -> BTreeSet<String> {
    let mut labels = BTreeSet::new();
    let bytes = text.as_bytes();
    for (start, _) in text.match_indices("LTRC") {
        let mut end = start + "LTRC".len();
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end > start + "LTRC".len() {
            labels.insert(text[start..end].to_string());
        }
    }
    labels
}

/// The format constants source actually declares: `FORMAT: &str = "…"`
/// version tags and `b"LTRC<N>\n"` magic byte strings.
fn declared_in(text: &str) -> BTreeSet<String> {
    let mut declared = BTreeSet::new();
    for (start, _) in text.match_indices("FORMAT: &str = \"") {
        let rest = &text[start + "FORMAT: &str = \"".len()..];
        if let Some(end) = rest.find('"') {
            declared.insert(rest[..end].to_string());
        }
    }
    for (start, _) in text.match_indices("b\"LTRC") {
        let rest = &text[start + 2..];
        if let Some(end) = rest.find('\\') {
            declared.insert(rest[..end].to_string());
        }
    }
    declared
}

fn visit_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Skip integration-test and bench trees: only library and
            // binary source declares canonical format constants.
            let name = path.file_name().unwrap_or_default();
            if name != "tests" && name != "benches" && name != "target" {
                visit_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// All format constants declared across `crates/*/src`.
fn declared_formats() -> BTreeSet<String> {
    let mut files = Vec::new();
    visit_rs(Path::new("crates"), &mut files);
    let mut declared = BTreeSet::new();
    for path in files {
        let text = fs::read_to_string(&path).expect("readable source file");
        declared.extend(declared_in(&text));
    }
    declared
}

#[test]
fn every_declared_format_is_specified_in_the_doc() {
    let doc = fs::read_to_string("docs/FORMATS.md").expect("docs/FORMATS.md exists");
    let declared = declared_formats();
    assert!(
        declared.len() >= 8,
        "expected at least 8 format constants (7 formats + 2 magics), found {declared:?}"
    );
    for format in &declared {
        assert!(
            doc.contains(format.as_str()),
            "format constant {format:?} is declared in source but missing from docs/FORMATS.md"
        );
    }
}

#[test]
fn every_format_the_doc_names_exists_in_source() {
    let doc = fs::read_to_string("docs/FORMATS.md").expect("docs/FORMATS.md exists");
    let declared = declared_formats();
    let mut named = version_tags(&doc);
    named.extend(magic_labels(&doc));
    assert!(
        !named.is_empty(),
        "docs/FORMATS.md names no format versions at all"
    );
    for token in &named {
        assert!(
            declared.contains(token),
            "docs/FORMATS.md names {token:?} but no source constant declares it \
             (stale doc, or a format was renamed without updating the spec)"
        );
    }
}

#[test]
fn the_doc_covers_all_seven_formats() {
    let doc = fs::read_to_string("docs/FORMATS.md").expect("docs/FORMATS.md exists");
    for required in [
        "LTRC1",
        "LTRC2",
        "lockss-sweep-v1",
        "lockss-scenario-v1",
        "lockss-trace-stats-v1",
        "lockss-metrics-v1",
        "lockss-profile-v1",
        "lockss-heartbeat-v1",
    ] {
        assert!(
            doc.contains(required),
            "docs/FORMATS.md is missing required format {required:?}"
        );
    }
}

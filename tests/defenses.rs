//! Integration tests for the individual attrition defenses (§5) and their
//! ablations, across the core, adversary, and metrics crates.

use lockss::adversary::{AdmissionFlood, BruteForce, Defection};
use lockss::core::config::Ablation;
use lockss::core::{World, WorldConfig};
use lockss::effort::CostModel;
use lockss::metrics::Summary;
use lockss::sim::{Duration, Engine, SimTime};
use lockss::storage::AuSpec;

fn config(seed: u64, ablation: Ablation) -> WorldConfig {
    let au_spec = AuSpec {
        size_bytes: 50_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = WorldConfig {
        n_peers: 40,
        n_aus: 3,
        au_spec,
        mtbf_years: 5.0,
        seed,
        ..WorldConfig::default()
    };
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    cfg.protocol.poll_interval = Duration::from_days(30);
    cfg.protocol.grade_decay = Duration::from_days(60);
    cfg.protocol.ablation = ablation;
    cfg
}

fn run(
    cfg: WorldConfig,
    adversary: Option<Box<dyn lockss::core::Adversary>>,
    days: u64,
) -> Summary {
    let mut world = World::new(cfg);
    if let Some(a) = adversary {
        world.install_adversary(a);
    }
    let mut eng = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + Duration::from_days(days);
    eng.run_until(&mut world, end);
    world.metrics.summarize(end)
}

#[test]
fn refractory_period_bounds_flood_consideration_cost() {
    let full = run(
        config(3, Ablation::default()),
        Some(Box::new(AdmissionFlood::new(1.0, 400))),
        240,
    );
    let ablated = run(
        config(
            3,
            Ablation {
                no_refractory: true,
                ..Ablation::default()
            },
        ),
        Some(Box::new(AdmissionFlood::new(1.0, 400))),
        240,
    );
    // Without the refractory period, every surviving garbage invitation
    // is considered: loyal effort balloons.
    assert!(
        ablated.loyal_effort_secs > full.loyal_effort_secs * 1.5,
        "refractory must bound consideration cost: {} vs {}",
        ablated.loyal_effort_secs,
        full.loyal_effort_secs
    );
}

#[test]
fn effort_balancing_makes_attacks_expensive() {
    let full = run(
        config(5, Ablation::default()),
        Some(Box::new(BruteForce::new(Defection::Remaining))),
        240,
    );
    let ablated = run(
        config(
            5,
            Ablation {
                no_effort_balancing: true,
                ..Ablation::default()
            },
        ),
        Some(Box::new(BruteForce::new(Defection::Remaining))),
        240,
    );
    // With effort balancing, the attacker pays real effort; without it,
    // the same attack is free.
    assert!(full.adversary_effort_secs > 0.0);
    assert_eq!(ablated.adversary_effort_secs, 0.0);
}

#[test]
fn reputation_taxes_in_debt_attackers() {
    let full = run(
        config(7, Ablation::default()),
        Some(Box::new(BruteForce::new(Defection::Intro))),
        240,
    );
    let ablated = run(
        config(
            7,
            Ablation {
                no_reputation: true,
                ..Ablation::default()
            },
        ),
        Some(Box::new(BruteForce::new(Defection::Intro))),
        240,
    );
    // With grades, in-debt identities face 0.8 drops (mean ~5 tries per
    // admission); without them the seeded identities pass as even and are
    // admitted without the drop tax: the attacker spends much less per
    // admission.
    assert!(
        ablated.adversary_effort_secs < full.adversary_effort_secs * 0.6,
        "reputation must tax admission: ablated {} vs full {}",
        ablated.adversary_effort_secs,
        full.adversary_effort_secs
    );
}

#[test]
fn desynchronization_ablation_still_functions_at_low_load() {
    // At low load, synchronous solicitation still works (the §5.2 failure
    // mode needs contention); this pins the ablation switch itself.
    let s = run(
        config(
            9,
            Ablation {
                synchronous_solicitation: true,
                ..Ablation::default()
            },
        ),
        None,
        240,
    );
    assert!(s.successful_polls > 100);
    let rate = s.successful_polls as f64 / (s.successful_polls + s.failed_polls) as f64;
    assert!(rate > 0.8, "success rate {rate}");
}

#[test]
fn ablations_default_to_off() {
    let a = Ablation::default();
    assert!(!a.synchronous_solicitation);
    assert!(!a.no_refractory);
    assert!(!a.no_introductions);
    assert!(!a.no_reputation);
    assert!(!a.no_effort_balancing);
}

#[test]
fn introductions_support_discovery_under_flood() {
    let with_intros = run(
        config(11, Ablation::default()),
        Some(Box::new(AdmissionFlood::new(1.0, 400))),
        360,
    );
    let without = run(
        config(
            11,
            Ablation {
                no_introductions: true,
                ..Ablation::default()
            },
        ),
        Some(Box::new(AdmissionFlood::new(1.0, 400))),
        360,
    );
    // Both keep content safe; the introduction-less variant fails at least
    // as many polls (discovery is slower when refractory periods block
    // unknown peers).
    assert!(with_intros.access_failure_probability < 0.02);
    assert!(without.access_failure_probability < 0.02);
    assert!(
        without.failed_polls >= with_intros.failed_polls,
        "introductions should not hurt: {} vs {}",
        without.failed_polls,
        with_intros.failed_polls
    );
}

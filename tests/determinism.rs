//! Determinism regression tests: a run is a pure function of its
//! configuration and seed, and `run_batch`'s parallelism must not leak
//! into the results (floating-point reductions are order-sensitive, so
//! the runner slots results by seed, not by completion order).
//!
//! `Summary` derives `PartialEq`, which compares every field — including
//! the `f64` effort accumulators — exactly, so these assertions demand
//! byte-identical results, not epsilon closeness.

use lockss::core::{World, WorldConfig};
use lockss::experiments::runner::{run_batch, run_once, run_once_recorded};
use lockss::experiments::scenario::{AttackSpec, Scenario};
use lockss::experiments::sweep::{load_checkpoint, run_sweep};
use lockss::experiments::{Scale, ScenarioRegistry};
use lockss::sim::{Duration, Engine, SimTime};
use lockss::trace::TraceMeta;

fn quick(attack: AttackSpec) -> Scenario {
    let mut s = Scenario::attacked(Scale::Quick, 2, attack);
    s.run_length = Duration::from_days(120);
    s
}

#[test]
fn world_summary_identical_across_two_runs() {
    let run = || {
        let cfg = WorldConfig {
            n_peers: 25,
            n_aus: 2,
            seed: 42,
            ..WorldConfig::default()
        };
        let mut world = World::new(cfg);
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        let end = SimTime::ZERO + Duration::from_days(120);
        eng.run_until(&mut world, end);
        world.metrics.summarize(end)
    };
    assert_eq!(run(), run());
}

#[test]
fn run_once_identical_across_two_runs() {
    let s = quick(AttackSpec::None);
    assert_eq!(run_once(&s, 7), run_once(&s, 7));
    let s = quick(AttackSpec::PipeStoppage {
        coverage: 1.0,
        days: 30,
    });
    assert_eq!(run_once(&s, 7), run_once(&s, 7));
}

/// Every registered scenario, shrunk to a smoke-test world: 30 peers,
/// 2 AUs, 150 simulated days (enough to cover every composite's latest
/// phase offset, 120 days).
fn shrunken_registry_jobs() -> Vec<(String, Scenario)> {
    ScenarioRegistry::standard()
        .entries()
        .iter()
        .map(|e| {
            let mut s = e.build(Scale::Quick);
            s.cfg.n_peers = 30;
            s.cfg.n_aus = 2;
            s.run_length = Duration::from_days(150);
            (e.name().to_string(), s)
        })
        .collect()
}

#[test]
fn every_registered_scenario_runs_and_reproduces() {
    for (name, s) in shrunken_registry_jobs() {
        let a = run_once(&s, 7);
        let b = run_once(&s, 7);
        assert_eq!(a, b, "scenario '{name}' is not byte-reproducible");
        assert!(
            a.successful_polls + a.failed_polls > 0,
            "scenario '{name}' concluded no polls at all"
        );
    }
}

#[test]
fn every_registered_scenario_is_thread_count_invariant() {
    let jobs: Vec<Scenario> = shrunken_registry_jobs()
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let single = run_batch(&jobs, 2, 1);
    let parallel = run_batch(&jobs, 2, 4);
    for (i, (name, _)) in shrunken_registry_jobs().iter().enumerate() {
        assert_eq!(
            single[i], parallel[i],
            "scenario '{name}' varies with the thread count"
        );
    }
}

/// Records one shrunken scenario and returns the trace's content hash.
fn record_hash(name: &str, scenario: &Scenario, seed: u64) -> String {
    let meta = TraceMeta {
        scenario: name.to_string(),
        scale: "quick".to_string(),
        seed,
        run_length_ms: scenario.run_length.as_millis(),
    };
    let (_, _, trace) = run_once_recorded(scenario, seed, &meta);
    trace.content_hash()
}

/// Golden-trace regression: for pinned `(scenario, seed)` pairs the trace
/// content hash must be byte-stable across repeated recordings. Any change
/// here means the causal event stream moved — either a deliberate protocol
/// change (fine: the hash follows it deterministically) or a determinism
/// leak (the bug this test exists to catch).
#[test]
fn golden_trace_hashes_are_stable_across_runs() {
    let pinned = ["baseline", "pipe-stoppage", "stoppage-then-flood"];
    for (name, s) in shrunken_registry_jobs() {
        if !pinned.contains(&name.as_str()) {
            continue;
        }
        for seed in [7u64, 11] {
            let a = record_hash(&name, &s, seed);
            let b = record_hash(&name, &s, seed);
            assert_eq!(a, b, "trace hash of '{name}' seed {seed} not reproducible");
        }
    }
}

/// The same pinned traces recorded on concurrently running threads must
/// hash identically: nothing about recording may depend on scheduling.
#[test]
fn golden_trace_hashes_are_thread_invariant() {
    let (name, s) = shrunken_registry_jobs()
        .into_iter()
        .find(|(n, _)| *n == "stoppage-then-flood")
        .expect("registered");
    let sequential = record_hash(&name, &s, 7);
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                let name = &name;
                scope.spawn(move || record_hash(name, &s, 7))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for hash in concurrent {
        assert_eq!(
            hash, sequential,
            "'{name}' trace hash varies across threads"
        );
    }
}

/// The registered production-scale world, shrunk for debug-mode test
/// speed: same builder, same link mix and lazy construction path, smaller
/// population and horizon. (The full 10k-peer sweep byte-identity runs in
/// release mode in CI: `sweep scale-10k-baseline --seeds 1..8` with
/// `--threads 1` vs `--threads 8`, `cmp`-ed.)
fn shrunken_scale_scenario() -> Scenario {
    let mut s = ScenarioRegistry::standard()
        .build("scale-10k-baseline", Scale::Quick)
        .expect("registered");
    s.cfg.n_peers = 300;
    s.run_length = Duration::from_days(150);
    s
}

/// The sweep orchestrator's merged report must be byte-identical no
/// matter how many worker threads raced over the seeds: results land in
/// seed-indexed slots and the merge reduces in seed order.
#[test]
fn sweep_report_is_thread_count_invariant() {
    let s = shrunken_scale_scenario();
    let seeds = [1, 2, 3, 4];
    let one = run_sweep(&s, "scale-10k-baseline", "quick", &seeds, 1, None, None);
    let eight = run_sweep(&s, "scale-10k-baseline", "quick", &seeds, 8, None, None);
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "merged sweep report must not depend on the thread count"
    );
    assert!(one.is_complete());
    assert!(one.merged().expect("merged").successful_polls > 0);
}

/// A sweep interrupted after some seeds and resumed from its checkpoint
/// file must produce a final report byte-identical to an uninterrupted
/// run: summaries round-trip through the checkpoint exactly (float bits
/// included), and resumed seeds are reused verbatim.
#[test]
fn sweep_checkpoint_resume_equals_uninterrupted() {
    let s = shrunken_scale_scenario();
    let seeds = [1, 2, 3];
    let dir = std::env::temp_dir().join(format!("lockss-determinism-{}", std::process::id()));
    let uninterrupted = dir.join("uninterrupted.json");
    let interrupted = dir.join("interrupted.json");

    let full = run_sweep(
        &s,
        "scale-10k-baseline",
        "quick",
        &seeds,
        2,
        Some(&uninterrupted),
        None,
    );

    // "Crash" after two seeds: the partial checkpoint is what survives.
    let _ = run_sweep(
        &s,
        "scale-10k-baseline",
        "quick",
        &seeds[..2],
        2,
        Some(&interrupted),
        None,
    );
    let prior = load_checkpoint(&interrupted, "scale-10k-baseline", "quick", None)
        .expect("checkpoint loads");
    assert_eq!(prior.completed.len(), 2);
    let resumed = run_sweep(
        &s,
        "scale-10k-baseline",
        "quick",
        &seeds,
        2,
        Some(&interrupted),
        Some(prior),
    );

    assert_eq!(
        resumed.to_json(),
        full.to_json(),
        "resume must reproduce the uninterrupted report byte for byte"
    );
    let on_disk = std::fs::read_to_string(&interrupted).expect("final checkpoint");
    assert_eq!(on_disk, full.to_json(), "final file matches too");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_batch_is_thread_count_invariant() {
    let jobs = [
        quick(AttackSpec::None),
        quick(AttackSpec::AdmissionFlood {
            coverage: 1.0,
            days: 120,
        }),
    ];
    let single = run_batch(&jobs, 3, 1);
    let parallel = run_batch(&jobs, 3, 4);
    assert_eq!(single, parallel);
    // And the batch path agrees with the sequential per-seed path.
    let repeat = run_batch(&jobs, 3, 4);
    assert_eq!(parallel, repeat);
}

//! Composite attack campaigns: registered, phased, replayable.
//!
//! The paper evaluates each attrition attack in isolation; the registry's
//! composite scenarios chain them. This example runs the registered
//! `stoppage-then-flood` campaign — a 60-day total blackout, then an
//! admission flood timed to land while the victims catch up on missed
//! audits — and prints the per-phase metric breakdown next to the §6.1
//! run-level metrics.
//!
//! A new campaign is one registration: compose any [`AttackSpec`]s with
//! per-member start offsets and give the result a name. The run is a pure
//! function of `(scenario, seed)`, so a campaign name plus a seed is a
//! replayable execution — cite it in a bug report and anyone can step
//! through the identical run.
//!
//! ```sh
//! cargo run --release --example composite_campaign
//! ```

use lockss::experiments::runner::run_once_with_phases;
use lockss::experiments::{Scale, ScenarioRegistry};

fn main() {
    let registry = ScenarioRegistry::standard();
    let entry = registry
        .get("stoppage-then-flood")
        .expect("'stoppage-then-flood' is registered");
    let scenario = entry.build(Scale::Quick);

    println!("Composite campaign: {}", entry.name());
    println!("  {}", entry.description());
    println!(
        "  paper: {}   attack: {}\n",
        entry.paper_ref(),
        scenario.attack.label()
    );

    let (summary, phases) = run_once_with_phases(&scenario, 1);
    let (base, _) = run_once_with_phases(&scenario.matched_baseline(), 1);

    println!("whole run ({}):", scenario.run_length);
    println!(
        "  access failure probability  {:.2e}",
        summary.access_failure_probability
    );
    println!(
        "  poll outcomes               {} ok / {} failed / {} alarms",
        summary.successful_polls, summary.failed_polls, summary.alarms
    );
    if let Some(d) = summary.delay_ratio(&base) {
        println!("  delay ratio vs baseline     {d:.2}");
    }
    if let Some(f) = summary.coefficient_of_friction(&base) {
        println!("  coefficient of friction     {f:.2}");
    }

    println!("\nper phase:");
    for p in &phases {
        println!(
            "  {:<18} [{:>4.0}d..{:>4.0}d]  {} ok / {} failed, {:.0} loyal CPU-s",
            p.label,
            p.start.as_days_f64(),
            p.end.as_days_f64(),
            p.successful_polls,
            p.failed_polls,
            p.loyal_effort_secs,
        );
    }

    println!(
        "\nThe blackout stalls polls outright; the flood that follows lets them\n\
         run but taxes every admission — the per-phase rows separate the two\n\
         mechanisms that the run-level ratios blend together."
    );
}

//! Exploring the admission-control parameter space (paper §9: "we are
//! currently exploring ... the length of the refractory period, the drop
//! probabilities for unknown and in-debt peers").
//!
//! Runs the §7.3 garbage-invitation flood against several refractory-period
//! lengths and drop probabilities and reports how friction and access
//! failure respond — the ablation the paper sketches as future work.
//!
//! ```sh
//! cargo run --release --example tuning_admission_control
//! ```

use lockss::core::{World, WorldConfig};
use lockss::experiments::{AttackSpec, Scale, ScenarioRegistry};
use lockss::metrics::Summary;
use lockss::sim::{Duration, Engine, SimTime};

/// The registered `admission-flood` world, shrunk to demo size.
fn config(seed: u64) -> WorldConfig {
    let mut cfg = ScenarioRegistry::standard()
        .build("admission-flood", Scale::Default)
        .expect("'admission-flood' is registered")
        .cfg;
    cfg.n_peers = 50;
    cfg.n_aus = 6;
    cfg.seed = seed;
    cfg
}

fn run(cfg: WorldConfig, attack: bool) -> Summary {
    let mut world = World::new(cfg);
    if attack {
        let spec = AttackSpec::AdmissionFlood {
            coverage: 1.0,
            days: 360,
        };
        world.install_adversary(spec.build().expect("an attack"));
    }
    let mut eng = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + Duration::YEAR;
    eng.run_until(&mut world, end);
    world.metrics.summarize(end)
}

fn main() {
    println!("Admission-control tuning under a full-coverage garbage flood");
    println!("50 peers x 6 AUs, one simulated year, attack sustained throughout.\n");

    println!(
        "{:<26} {:>14} {:>14} {:>16}",
        "parameters", "friction", "delay ratio", "access failure"
    );

    for (label, refractory_hours, drop_unknown) in [
        ("refractory 6h,  drop .90", 6u64, 0.90),
        ("refractory 1d,  drop .90", 24, 0.90),
        ("refractory 4d,  drop .90", 96, 0.90),
        ("refractory 1d,  drop .95", 24, 0.95),
        ("refractory 1d,  drop .99", 24, 0.99),
    ] {
        let mut cfg = config(11);
        cfg.protocol.refractory = Duration::from_hours(refractory_hours);
        cfg.protocol.drop_unknown = drop_unknown;
        let baseline = run(cfg.clone(), false);
        let attacked = run(cfg, true);
        println!(
            "{:<26} {:>14} {:>14} {:>16}",
            label,
            fmt(attacked.coefficient_of_friction(&baseline)),
            fmt(attacked.delay_ratio(&baseline)),
            format!("{:.2e}", attacked.access_failure_probability),
        );
    }

    println!(
        "\nLonger refractory periods blunt the flood (fewer admissions per day);\n\
         harsher unknown-drops starve discovery even without an attack — the\n\
         §6.3 calibration balances the two."
    );
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into())
}

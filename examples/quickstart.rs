//! Quickstart: build a preservation network, let it audit and repair
//! itself for a simulated year, and read out the §6.1 metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lockss::core::World;
use lockss::effort::CostModel;
use lockss::experiments::{Scale, ScenarioRegistry};
use lockss::sim::{Duration, Engine, SimTime};
use lockss::storage::AuSpec;

fn main() {
    // The registered `baseline` scenario, shrunk to a 40-peer network
    // preserving 5 archival units of 100 MB each, polling every month,
    // with storage damaged at one block per 2 disk-years — deliberately
    // harsher than the paper's defaults so a short run shows the repair
    // machinery working.
    let au_spec = AuSpec {
        size_bytes: 100_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = ScenarioRegistry::standard()
        .build("baseline", Scale::Default)
        .expect("'baseline' is registered")
        .cfg;
    cfg.n_peers = 40;
    cfg.n_aus = 5;
    cfg.au_spec = au_spec;
    cfg.mtbf_years = 2.0;
    cfg.seed = 2026;
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    cfg.protocol.poll_interval = Duration::MONTH;

    println!("LOCKSS attrition-defense reproduction — quickstart");
    println!(
        "{} peers x {} AUs ({} MB each), poll interval {}, damage 1 block / {} disk-years",
        cfg.n_peers,
        cfg.n_aus,
        au_spec.size_bytes / 1_000_000,
        cfg.protocol.poll_interval,
        cfg.mtbf_years,
    );

    let mut world = World::new(cfg);
    let mut eng = Engine::new();
    world.start(&mut eng);

    // Step through the year a quarter at a time, reporting progress.
    for quarter in 1..=4u64 {
        let until = SimTime::ZERO + Duration::MONTH * (3 * quarter);
        eng.run_until(&mut world, until);
        let damaged: usize = world.peers.total_damaged();
        println!(
            "after {:>2} months: {:>5} polls succeeded, {:>3} failed, {} replicas damaged right now",
            3 * quarter,
            world.metrics.polls.successful_polls,
            world.metrics.polls.failed_polls,
            damaged,
        );
    }

    let end = SimTime::ZERO + Duration::YEAR;
    let summary = world.metrics.summarize(end);
    println!();
    println!("=== one simulated year ===");
    println!(
        "access failure probability: {:.2e}   (fraction of replica-time spent damaged)",
        summary.access_failure_probability
    );
    if let Some(gap) = summary.mean_time_between_successes {
        println!("mean time between successful polls: {gap}");
    }
    println!(
        "poll success rate: {:.1}%  ({} ok / {} failed, {} alarms)",
        100.0 * summary.successful_polls as f64
            / (summary.successful_polls + summary.failed_polls).max(1) as f64,
        summary.successful_polls,
        summary.failed_polls,
        summary.alarms,
    );
    println!(
        "loyal CPU effort: {:.0} CPU-seconds (~{:.2}% utilization per peer)",
        summary.loyal_effort_secs,
        100.0 * summary.loyal_effort_secs / (world.n_loyal() as f64 * Duration::YEAR.as_secs_f64()),
    );
    let traffic = world.net.total_traffic();
    println!(
        "network: {} messages, {:.1} GB transferred",
        traffic.messages_sent,
        traffic.bytes_sent as f64 / 1e9,
    );
}

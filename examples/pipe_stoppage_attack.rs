//! Pipe stoppage (§7.2): a network-level DoS adversary silences most of
//! the population for months — and the system shrugs it off once the pipes
//! reopen.
//!
//! Runs a baseline and an attacked world side by side and prints the §6.1
//! metrics the paper's Figures 3–5 report.
//!
//! ```sh
//! cargo run --release --example pipe_stoppage_attack
//! ```

use lockss::core::World;
use lockss::experiments::{AttackSpec, Scale, Scenario, ScenarioRegistry};
use lockss::metrics::Summary;
use lockss::sim::{Engine, SimTime};

/// The registered `pipe-stoppage` scenario, shrunk to demo size.
fn scenario() -> Scenario {
    let mut s = ScenarioRegistry::standard()
        .build("pipe-stoppage", Scale::Default)
        .expect("'pipe-stoppage' is registered");
    s.cfg.n_peers = 60;
    s.cfg.n_aus = 8;
    s.cfg.seed = 1;
    s
}

fn run(s: &Scenario) -> (Summary, usize) {
    let mut world = World::new(s.cfg.clone());
    if let Some(a) = s.attack.build() {
        world.install_adversary(a);
    }
    let mut eng = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + s.run_length;
    eng.run_until(&mut world, end);
    let damaged: usize = world.peers.total_damaged();
    (world.metrics.summarize(end), damaged)
}

fn main() {
    println!("Pipe-stoppage attack demo (paper §7.2)");
    println!("60 peers x 8 AUs, two simulated years, 3-month polls.\n");

    let (baseline, _) = run(&scenario().with_attack(AttackSpec::None));
    println!("baseline:");
    print_summary(&baseline, &baseline);

    for (coverage, days) in [(0.4, 30), (1.0, 30), (1.0, 120)] {
        let attacked_scenario = scenario().with_attack(AttackSpec::PipeStoppage { coverage, days });
        let (attacked, damaged_now) = run(&attacked_scenario);
        println!(
            "\npipe stoppage, {:.0}% coverage, {days}-day attacks, 30-day recuperation:",
            coverage * 100.0
        );
        print_summary(&attacked, &baseline);
        println!("  replicas damaged at run end:   {damaged_now}");
    }

    println!(
        "\nThe paper's point (§7.2): even total communication blackouts must be\n\
         wide AND long to matter — untargeted peers keep auditing, and targeted\n\
         peers recover during recuperation windows by repairing from them."
    );
}

fn print_summary(s: &Summary, baseline: &Summary) {
    println!(
        "  access failure probability:    {:.2e}",
        s.access_failure_probability
    );
    println!(
        "  poll outcomes:                 {} ok / {} failed",
        s.successful_polls, s.failed_polls
    );
    if let Some(d) = s.delay_ratio(baseline) {
        println!("  delay ratio vs baseline:       {d:.2}");
    }
    if let Some(f) = s.coefficient_of_friction(baseline) {
        println!("  coefficient of friction:       {f:.2}");
    }
}

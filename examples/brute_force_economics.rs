//! The economics of effortful attrition (§7.4, Table 1).
//!
//! A brute-force adversary with unlimited resources pushes valid
//! introductory efforts through admission control from in-debt identities,
//! then defects at different protocol stages. Effort balancing makes every
//! strategy cost him at least as much as it costs his victims, and rate
//! limits keep the damage bounded no matter how much he spends.
//!
//! ```sh
//! cargo run --release --example brute_force_economics
//! ```

use lockss::adversary::Defection;
use lockss::core::World;
use lockss::effort::CostModel;
use lockss::experiments::{Scale, ScenarioRegistry};
use lockss::metrics::Summary;
use lockss::sim::{Duration, Engine, SimTime};

/// Runs one of the registered `brute-force-*` scenarios (or `baseline`),
/// shrunk to demo size, for one simulated year.
fn run(name: &str, seed: u64) -> Summary {
    let mut s = ScenarioRegistry::standard()
        .build(name, Scale::Default)
        .unwrap_or_else(|| panic!("'{name}' is registered"));
    s.cfg.n_peers = 50;
    s.cfg.n_aus = 6;
    s.cfg.seed = seed;
    let mut world = World::new(s.cfg.clone());
    if let Some(adv) = s.attack.build() {
        world.install_adversary(adv);
    }
    let mut eng = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + Duration::YEAR;
    eng.run_until(&mut world, end);
    world.metrics.summarize(end)
}

fn main() {
    println!("Brute-force attrition economics (paper §7.4 / Table 1)");
    println!("50 peers x 6 AUs, one simulated year, continuous attack.\n");

    let cost = CostModel::default().with_au_bytes(100_000_000);
    println!("effort-balance calibration (per voter, CPU-seconds):");
    println!(
        "  poller provable effort: intro {:.1}s + remaining {:.1}s",
        cost.intro_gen().as_secs_f64(),
        cost.remaining_gen().as_secs_f64()
    );
    println!(
        "  voter service cost:     {:.1}s (verify proofs + hash AU + vote proof)",
        cost.vote_service_cost().as_secs_f64()
    );
    println!(
        "  => requester always has more invested than supplier: {}\n",
        cost.balance_holds()
    );

    let baseline = run("baseline", 3);

    println!(
        "{:<11} {:>15} {:>12} {:>12} {:>16}",
        "defection", "coeff.friction", "cost ratio", "delay ratio", "access failure"
    );
    for (d, scenario) in [
        (Defection::Intro, "brute-force-intro"),
        (Defection::Remaining, "brute-force-remaining"),
        (Defection::None_, "brute-force-none"),
    ] {
        let s = run(scenario, 3);
        println!(
            "{:<11} {:>15} {:>12} {:>12} {:>16}",
            d.label(),
            fmt(s.coefficient_of_friction(&baseline)),
            fmt(s.cost_ratio()),
            fmt(s.delay_ratio(&baseline)),
            format!("{:.2e}", s.access_failure_probability),
        );
    }
    println!(
        "{:<11} {:>15} {:>12} {:>12} {:>16}",
        "(baseline)",
        "1.00",
        "-",
        "1.00",
        format!("{:.2e}", baseline.access_failure_probability),
    );

    println!(
        "\nThe paper's point: even an adversary with unlimited resources can only\n\
         raise loyal peers' per-poll cost by a small constant factor, while rate\n\
         limits stop him from converting resources into lost content."
    );
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into())
}

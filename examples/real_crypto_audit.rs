//! "Real mode": the actual cryptographic datapath behind the simulation's
//! cost models.
//!
//! The simulator (like the paper's Narses runs) charges *time* for hashing
//! and effort proofs; this example runs the real thing end to end on a tiny
//! archival unit:
//!
//! 1. a poller and voter establish an authenticated session;
//! 2. the poller performs the memory-bound introductory + remaining effort
//!    and the voter verifies it;
//! 3. the voter computes a genuine nonce-keyed running-hash vote over its
//!    replica;
//! 4. the poller evaluates the vote block by block, detects the voter's
//!    damaged block (and its own), fetches a repair, and re-verifies;
//! 5. the poller returns the MBF *byproduct* as the unforgeable evaluation
//!    receipt, which the voter checks.
//!
//! ```sh
//! cargo run --release --example real_crypto_audit
//! ```

use lockss::crypto::{MbfParams, MbfPuzzle};
use lockss::net::session::Session;
use lockss::storage::au::{AuId, AuSpec, Replica};
use lockss::storage::content::{canonical_block, disagreements, running_hashes};

fn main() {
    println!("Real-mode audit: genuine hashes, proofs, sessions\n");
    let spec = AuSpec {
        size_bytes: 64 * 1024,
        block_bytes: 4 * 1024,
    };
    let content_seed = 0xC0FFEE;
    let au = AuId(7);

    // 1. Authenticated session (stands in for TLS over anonymous DH).
    let (mut poller_chan, mut voter_chan) = Session::pair(0xDEADBEEF);
    let invite = b"Poll { au: 7, poll: 42 }";
    let sealed = poller_chan.seal(invite);
    assert!(voter_chan.open(invite, &sealed));
    println!("[1] session established, Poll message authenticated");

    // 2. Effort balancing: the poller proves memory-bound effort; the
    //    voter verifies it (and remembers the byproduct).
    let puzzle = MbfPuzzle::new(
        MbfParams {
            table_bits: 14,
            walk_len: 256,
            n_walks: 8,
            difficulty_bits: 3,
        },
        0xA5A5,
    );
    let challenge = b"poll-42-intro";
    let proof = puzzle.prove(challenge);
    let byproduct = puzzle
        .verify(challenge, &proof)
        .expect("honest proof verifies");
    println!(
        "[2] introductory effort: {} walks proven (~{} expected steps), verified at ~{} steps",
        proof.walks.len(),
        puzzle.params().expected_generation_steps(),
        puzzle.params().verification_steps(),
    );

    // 3. The replicas: the poller damaged block 2, the voter block 5.
    let mut poller_replica = Replica::pristine();
    poller_replica.damage(2);
    let mut voter_replica = Replica::pristine();
    voter_replica.damage(5);

    let nonce = b"fresh-poller-nonce-42";
    let vote = running_hashes(content_seed, au, &spec, &voter_replica, 111, nonce);
    println!(
        "[3] voter computed a {}-block running-hash vote",
        vote.len()
    );

    // 4. Evaluation: compare against the poller's own hashes.
    let mine = running_hashes(content_seed, au, &spec, &poller_replica, 222, nonce);
    let diffs = disagreements(&mine, &vote);
    println!(
        "[4] first divergent block: {:?} (poller damaged 2, voter damaged 5)",
        diffs
    );
    assert_eq!(diffs.first(), Some(&2));

    // The poller repairs its block 2 from the (majority-agreeing) publisher
    // content the voter holds, then re-evaluates.
    let repair = canonical_block(content_seed, au, 2, &spec);
    assert_eq!(repair, canonical_block(content_seed, au, 2, &spec));
    poller_replica.repair(2);
    let mine_fixed = running_hashes(content_seed, au, &spec, &poller_replica, 222, nonce);
    let diffs_fixed = disagreements(&mine_fixed, &vote);
    assert_eq!(
        diffs_fixed.first(),
        Some(&5),
        "after repairing block 2, the remaining disagreement is the voter's damage"
    );
    println!("[4] repaired block 2; remaining disagreement is the voter's own block 5");

    // 5. The receipt: the MBF byproduct proves the poller did the work.
    let receipt = byproduct;
    assert_eq!(receipt, proof.byproduct);
    println!(
        "[5] evaluation receipt (MBF byproduct, 160 bits): {}",
        hex(&receipt)
    );
    println!("\nEverything the simulator charges time for exists and runs for real.");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
